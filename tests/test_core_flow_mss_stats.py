"""Tests for the flow table, classifier, MSS clamp, config, and stats."""

import pytest

from repro.core import (
    Bound,
    FlowClassifier,
    FlowTable,
    GatewayConfig,
    GatewayStats,
    GatewayWorker,
    MssClamp,
)
from repro.core.caravan import encode_caravan
from repro.packet import FlowKey, IPProto, TCPFlags, build_tcp, build_udp


class TestFlowTable:
    def key(self, i=0):
        return FlowKey(IPProto.TCP, 100 + i, 1, 200, 2)

    def test_lookup_creates_once(self):
        table = FlowTable()
        a = table.lookup(self.key(), now=1.0)
        b = table.lookup(self.key(), now=2.0)
        assert a is b
        assert table.misses == 1
        assert table.lookups == 2

    def test_lru_eviction(self):
        evicted = []
        table = FlowTable(capacity=2, on_evict=evicted.append)
        table.lookup(self.key(0))
        table.lookup(self.key(1))
        table.lookup(self.key(0))  # refresh 0
        table.lookup(self.key(2))  # evicts 1
        assert table.evictions == 1
        assert evicted[0].key == self.key(1)
        assert self.key(0) in table

    def test_expire_idle(self):
        table = FlowTable()
        state = table.lookup(self.key(), now=0.0)
        state.touch(100, now=0.0)
        assert table.expire_idle(now=100.0, idle_timeout=30.0) == 1
        assert len(table) == 0

    def test_peek_does_not_create(self):
        table = FlowTable()
        assert table.peek(self.key()) is None
        assert len(table) == 0

    def test_expire_idle_counts_as_eviction(self):
        # Regression: expiry used to fire on_evict without bumping the
        # evictions counter, so idle churn was invisible in metrics.
        evicted = []
        table = FlowTable(on_evict=evicted.append)
        table.lookup(self.key(0), now=0.0)
        table.lookup(self.key(1), now=0.0)
        table.lookup(self.key(2), now=50.0)
        assert table.expire_idle(now=60.0, idle_timeout=30.0) == 2
        assert table.evictions == 2
        assert [state.key for state in evicted] == [self.key(0), self.key(1)]
        assert self.key(2) in table

    def test_restore_trims_to_capacity_lru_first(self):
        # Regression: restore used to load every record regardless of
        # the receiving table's capacity, so failover onto a smaller
        # standby silently exceeded the bound.
        big = FlowTable(capacity=8)
        for i in range(6):
            big.lookup(self.key(i), now=float(i))
        evicted = []
        small = FlowTable(capacity=4, on_evict=evicted.append)
        small.restore(big.snapshot())
        assert len(small) == 4
        assert small.evictions == 2
        # LRU-first: the two oldest records are the ones trimmed, and
        # they leave through on_evict like any capacity eviction.
        assert [state.key for state in evicted] == [self.key(0), self.key(1)]
        assert self.key(5) in small and self.key(2) in small

    def test_restore_preserves_flow_state(self):
        table = FlowTable()
        state = table.lookup(self.key(), now=1.0)
        state.touch(500, now=2.0)
        state.is_elephant = True
        clone = FlowTable()
        clone.restore(table.snapshot())
        restored = clone.peek(self.key())
        assert restored.bytes == 500
        assert restored.is_elephant
        assert restored.last_seen == 2.0

    def test_adopt_merges_without_clobbering_live_state(self):
        donor = FlowTable()
        for i in range(3):
            donor.lookup(self.key(i), now=0.0)
        receiver = FlowTable(capacity=3)
        live = receiver.lookup(self.key(0), now=5.0)
        live.touch(999, now=5.0)
        added = receiver.adopt(donor.snapshot())
        assert added == 2  # key(0) already present, kept
        assert receiver.peek(self.key(0)).bytes == 999
        assert len(receiver) == 3

    def test_adopt_respects_capacity(self):
        donor = FlowTable()
        for i in range(5):
            donor.lookup(self.key(i), now=float(i))
        evicted = []
        receiver = FlowTable(capacity=2, on_evict=evicted.append)
        receiver.adopt(donor.snapshot())
        assert len(receiver) == 2
        assert receiver.evictions == 3
        assert len(evicted) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FlowTable(capacity=0)


class TestClassifier:
    def packet(self, flow=0):
        return build_udp("1.0.0.1", "2.0.0.2", 1000 + flow, 80, payload=b"x" * 100)

    def test_promotion_after_threshold(self):
        table = FlowTable()
        classifier = FlowClassifier(table, threshold_packets=4, window=1.0)
        verdicts = [
            classifier.observe(self.packet(), now=0.001 * i).is_elephant
            for i in range(5)
        ]
        assert verdicts == [False, False, False, True, True]
        assert classifier.promotions == 1

    def test_sporadic_flow_stays_mouse(self):
        table = FlowTable()
        classifier = FlowClassifier(table, threshold_packets=4, window=0.01)
        # One packet every 100 ms: the window resets between arrivals.
        for i in range(20):
            state = classifier.observe(self.packet(), now=0.1 * i)
        assert not state.is_elephant

    def test_promotion_is_sticky(self):
        table = FlowTable()
        classifier = FlowClassifier(table, threshold_packets=2, window=0.01)
        classifier.observe(self.packet(), now=0.0)
        state = classifier.observe(self.packet(), now=0.001)
        assert state.is_elephant
        # Quiet period, then one packet: still an elephant.
        state = classifier.observe(self.packet(), now=5.0)
        assert state.is_elephant


class TestMssClamp:
    def syn(self, mss, flags=TCPFlags.SYN):
        return build_tcp("1.1.1.1", "2.2.2.2", 1, 2, flags=flags, mss=mss)

    def test_inbound_raises_mss(self):
        clamp = MssClamp(GatewayConfig(imtu=9000, emtu=1500))
        packet = self.syn(1460)
        assert clamp.process(packet, Bound.INBOUND)
        assert packet.tcp.mss_option == 8960
        assert packet.meta["mss_raised_from"] == 1460

    def test_inbound_leaves_larger_mss(self):
        clamp = MssClamp(GatewayConfig(imtu=9000, emtu=1500))
        packet = self.syn(9200)
        assert not clamp.process(packet, Bound.INBOUND)
        assert packet.tcp.mss_option == 9200

    def test_outbound_caps_mss(self):
        clamp = MssClamp(GatewayConfig(imtu=9000, emtu=1500))
        packet = self.syn(8960)
        assert clamp.process(packet, Bound.OUTBOUND)
        assert packet.tcp.mss_option == 1460

    def test_synack_also_rewritten(self):
        clamp = MssClamp(GatewayConfig())
        packet = self.syn(1460, flags=TCPFlags.SYN | TCPFlags.ACK)
        assert clamp.process(packet, Bound.INBOUND)

    def test_data_packets_untouched(self):
        clamp = MssClamp(GatewayConfig())
        packet = build_tcp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"data", mss=1460)
        assert not clamp.process(packet, Bound.INBOUND)

    def test_syn_without_mss_untouched(self):
        clamp = MssClamp(GatewayConfig())
        packet = build_tcp("1.1.1.1", "2.2.2.2", 1, 2, flags=TCPFlags.SYN)
        assert not clamp.process(packet, Bound.INBOUND)


class TestGatewayConfig:
    def test_defaults_are_paper_px(self):
        config = GatewayConfig()
        assert config.imtu == 9000 and config.emtu == 1500
        assert config.delayed_merge and config.mss_clamp
        assert not config.header_only_dma and not config.baseline_gro

    def test_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(imtu=1500, emtu=1500)
        with pytest.raises(ValueError):
            GatewayConfig(imtu=9000, emtu=500)

    def test_payload_budgets(self):
        config = GatewayConfig(imtu=9000, emtu=1500)
        assert config.imtu_tcp_payload == 8960
        assert config.emtu_tcp_payload == 1460
        assert config.imtu_udp_payload == 8972


class TestGatewayStats:
    def test_conversion_yield(self):
        stats = GatewayStats()
        for _ in range(9):
            stats.note_inbound_data_packet(9000, imtu=9000)
        stats.note_inbound_data_packet(1500, imtu=9000)
        assert stats.conversion_yield == pytest.approx(0.9)
        assert stats.conversion_yield_bytes == pytest.approx(81000 / 82500)

    def test_slack_tolerance(self):
        stats = GatewayStats()
        stats.note_inbound_data_packet(8950, imtu=9000, slack=64)
        assert stats.conversion_yield == 1.0

    def test_empty_yield_zero(self):
        assert GatewayStats().conversion_yield == 0.0

    def test_merge_aggregates(self):
        a, b = GatewayStats(), GatewayStats()
        a.note_inbound_data_packet(9000, imtu=9000)
        b.note_inbound_data_packet(1500, imtu=9000)
        b.rx_packets = 7
        a.merge(b)
        assert a.inbound_data_packets == 2
        assert a.conversion_yield == 0.5
        assert a.rx_packets == 7
        assert a.inbound_size_histogram == {9000: 1, 1500: 1}

    def test_conservation_errors_balanced_and_not(self):
        stats = GatewayStats()
        stats.tcp_payload_in = 100
        stats.tcp_payload_out = 60
        assert stats.conservation_errors(pending_tcp_bytes=40) == {}
        assert stats.conservation_errors(pending_tcp_bytes=0) == {"tcp_bytes": 40}
        stats.udp_datagrams_in = 10
        stats.udp_datagrams_out = 7
        stats.udp_datagrams_malformed = 2
        assert stats.conservation_errors(
            pending_tcp_bytes=40, pending_datagrams=1
        ) == {}
        assert stats.conservation_errors(
            pending_tcp_bytes=40, pending_datagrams=0
        ) == {"udp_datagrams": 1}


class TestWorkerConservation:
    """The conservation identities must hold through every worker path —
    including the ones that bypass or pressure the merge engines:
    the NIC hairpin, header-only-DMA fallback, and context eviction."""

    def check(self, worker):
        errors = worker.stats.conservation_errors(
            pending_tcp_bytes=worker.merge.pending_bytes(),
            pending_datagrams=worker.caravan_merge.pending_packets(),
        )
        assert errors == {}, errors

    def tcp_data(self, seq, payload_len=1460, src_port=5000):
        return build_tcp(
            "8.0.0.1",
            "10.0.0.9",
            src_port,
            80,
            seq=seq,
            flags=TCPFlags.ACK,
            payload=bytes(payload_len),
        )

    def test_hairpinned_mice_stay_balanced(self):
        """Mice bypass the merge engine entirely; the identity must hold
        with both payload counters untouched."""
        worker = GatewayWorker(GatewayConfig(elephant_threshold_packets=1000))
        for i in range(5):
            out = worker.process(self.tcp_data(seq=1 + 1460 * i), Bound.INBOUND, now=i * 1e-3)
            assert out  # forwarded via the hairpin, not buffered
        assert worker.stats.hairpinned == 5
        assert worker.stats.tcp_payload_in == 0  # never entered the engine
        self.check(worker)

    def test_elephants_balance_through_merge_and_flush(self):
        worker = GatewayWorker(GatewayConfig(elephant_threshold_packets=2))
        for i in range(12):
            worker.process(self.tcp_data(seq=1 + 1460 * i), Bound.INBOUND, now=i * 1e-5)
            self.check(worker)  # identity holds at every instant
        assert worker.merge.pending_bytes() > 0  # a partial jumbo is buffered
        worker.end_batch(now=1.0)
        assert worker.merge.pending_bytes() == 0
        self.check(worker)

    def test_hdo_fallback_path_keeps_identity(self):
        """With header-only DMA and a tiny on-NIC budget every packet
        falls back to full DMA — the counters must not fork."""
        worker = GatewayWorker(
            GatewayConfig(
                elephant_threshold_packets=1, header_only_dma=True
            )
        )
        worker.nic_memory_bytes = 100  # force the fallback immediately
        for i in range(8):
            worker.process(self.tcp_data(seq=1 + 1460 * i), Bound.INBOUND, now=i * 1e-5)
        assert worker.stats.hdo_fallbacks >= 7
        self.check(worker)
        worker.end_batch(now=1.0)
        self.check(worker)

    def test_eviction_storm_flushes_not_drops(self):
        """With one merge context, interleaved flows evict each other
        constantly; evicted contexts must flush their bytes, not leak."""
        worker = GatewayWorker(GatewayConfig(elephant_threshold_packets=1))
        worker.merge.max_contexts = 1
        for i in range(10):
            port = 5000 + (i % 2)  # two flows fight over one context
            worker.process(
                self.tcp_data(seq=1 + 1460 * (i // 2), src_port=port),
                Bound.INBOUND,
                now=i * 1e-5,
            )
            self.check(worker)
        worker.end_batch(now=1.0)
        self.check(worker)
        assert worker.stats.tcp_payload_in == 10 * 1460
        assert worker.stats.tcp_payload_out == 10 * 1460

    def test_caravan_paths_balance(self):
        worker = GatewayWorker(GatewayConfig(elephant_threshold_packets=1))
        datagrams = [
            build_udp("8.0.0.1", "10.0.0.9", 6000, 4433, payload=bytes(1000))
            for _ in range(4)
        ]
        # Inbound: plain datagrams accumulate toward a caravan.
        for i, datagram in enumerate(datagrams):
            worker.process(datagram, Bound.INBOUND, now=i * 1e-5)
            self.check(worker)
        worker.end_batch(now=1.0)
        self.check(worker)
        # Outbound: a caravan is opened back into datagrams.
        caravan = encode_caravan(
            [
                build_udp("10.0.0.9", "8.0.0.1", 4433, 6000, payload=bytes(1000))
                for _ in range(3)
            ]
        )
        out = worker.process(caravan, Bound.OUTBOUND, now=2.0)
        assert len(out) == 3
        assert worker.stats.caravans_opened == 1
        self.check(worker)

    def test_malformed_caravan_counts_as_malformed_not_lost(self):
        worker = GatewayWorker(GatewayConfig(elephant_threshold_packets=1))
        caravan = encode_caravan(
            [
                build_udp("10.0.0.9", "8.0.0.1", 4433, 6000, payload=bytes(500))
                for _ in range(2)
            ]
        )
        caravan.payload = caravan.payload[:-200]  # damage the last record
        caravan.udp.length = 8 + len(caravan.payload)
        caravan.ip.total_length = caravan.ip.header_len + caravan.udp.length
        out = worker.process(caravan, Bound.OUTBOUND, now=0.0)
        assert out == []
        assert worker.stats.malformed_caravans == 1
        assert worker.stats.udp_datagrams_malformed >= 1
        self.check(worker)
