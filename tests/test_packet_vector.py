"""Property tests: batch serialization equals the scalar path byte-for-byte.

``checksum_many`` and ``serialize_many`` exist purely to amortize
Python overhead — they promise *bit-identical* results to the scalar
``internet_checksum`` / ``Packet.to_bytes`` loops, including the pack
side effects the scalar path leaves behind (stored L4 checksums,
recomputed IP total lengths).  These tests pin that contract, plus the
delivery-order determinism of the batched link path.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packet import (
    ICMPMessage,
    ICMPType,
    IPProto,
    IPv4Header,
    Packet,
    TCPFlags,
    checksum_many,
    internet_checksum,
    serialize_many,
)
from repro.packet.builder import build_icmp, build_tcp, build_udp

# ---------------------------------------------------------------------------
# checksum_many vs the scalar oracle
# ---------------------------------------------------------------------------

chunk = st.binary(max_size=257)  # odd bound: exercises the padding path


@given(st.lists(chunk, max_size=12))
def test_checksum_many_matches_scalar(chunks):
    assert checksum_many(chunks) == [internet_checksum(c) for c in chunks]


def test_checksum_many_empty_batch():
    assert checksum_many([]) == []


def test_checksum_many_empty_chunk():
    # An empty chunk sums to 0 and folds to 0xFFFF, same as the scalar.
    assert checksum_many([b""]) == [internet_checksum(b"")] == [0xFFFF]


@given(st.lists(st.binary(min_size=1, max_size=33).filter(lambda d: len(d) % 2),
                min_size=1, max_size=8))
def test_checksum_many_all_odd_lengths(chunks):
    # Every chunk odd: each one pads independently, none bleeds into
    # its neighbour's words.
    assert checksum_many(chunks) == [internet_checksum(c) for c in chunks]


@given(st.lists(st.one_of(st.binary(max_size=9), st.binary(min_size=1000, max_size=1501)),
                min_size=2, max_size=10))
def test_checksum_many_mixed_sizes(chunks):
    assert checksum_many(chunks) == [internet_checksum(c) for c in chunks]


# ---------------------------------------------------------------------------
# serialize_many vs Packet.to_bytes
# ---------------------------------------------------------------------------

ip_addr = st.integers(min_value=0, max_value=0xFFFFFFFF)
port = st.integers(min_value=0, max_value=0xFFFF)
payload = st.binary(max_size=200)


@st.composite
def tcp_packets(draw):
    packet = build_tcp(
        draw(ip_addr), draw(ip_addr), draw(port), draw(port),
        payload=draw(payload),
        seq=draw(st.integers(min_value=0, max_value=0xFFFFFFFF)),
        ack=draw(st.integers(min_value=0, max_value=0xFFFFFFFF)),
        flags=draw(st.integers(min_value=0, max_value=0xFF)),
        window=draw(port),
        mss=draw(st.one_of(st.none(), st.integers(min_value=536, max_value=9000))),
        tos=draw(st.integers(min_value=0, max_value=0xFF)),
        ip_id=draw(port),
    )
    return packet


@st.composite
def udp_packets(draw):
    return build_udp(
        draw(ip_addr), draw(ip_addr), draw(port), draw(port),
        payload=draw(payload), ip_id=draw(port),
    )


@st.composite
def icmp_packets(draw):
    # ICMP falls back to the scalar l4.pack() inside serialize_many;
    # still must match to_bytes exactly.
    return build_icmp(
        draw(ip_addr), draw(ip_addr),
        ICMPMessage(icmp_type=ICMPType.ECHO_REQUEST, code=0,
                    payload=draw(st.binary(max_size=64))),
    )


@st.composite
def fragments(draw):
    # A middle fragment: l4 is None, the payload is raw bytes.
    ip = IPv4Header(
        src=draw(ip_addr), dst=draw(ip_addr), protocol=IPProto.UDP,
        identification=draw(port), more_fragments=True,
        fragment_offset=draw(st.integers(min_value=1, max_value=512)),
    )
    body = draw(st.binary(min_size=8, max_size=64))
    ip.total_length = ip.header_len + len(body)
    return Packet(ip=ip, l4=None, payload=body)


any_packet = st.one_of(tcp_packets(), udp_packets(), icmp_packets(), fragments())


@settings(max_examples=60, deadline=None)
@given(st.lists(any_packet, max_size=10))
def test_serialize_many_matches_to_bytes(packets):
    scalars = [copy.deepcopy(p) for p in packets]
    assert serialize_many(packets) == [p.to_bytes() for p in scalars]


@settings(max_examples=40, deadline=None)
@given(st.lists(any_packet, min_size=1, max_size=6))
def test_serialize_many_replicates_pack_side_effects(packets):
    # Scalar pack() stores the computed L4 checksum on the header and
    # refreshes ip.total_length; the batch path must leave the same
    # state behind so later code observing those fields can't tell the
    # two paths apart.
    scalars = [copy.deepcopy(p) for p in packets]
    serialize_many(packets)
    for p in scalars:
        p.to_bytes()
    for batch_p, scalar_p in zip(packets, scalars):
        assert batch_p.ip.total_length == scalar_p.ip.total_length
        if batch_p.l4 is not None and not isinstance(batch_p.l4, ICMPMessage):
            assert batch_p.l4.checksum == scalar_p.l4.checksum


def test_serialize_many_empty_batch():
    assert serialize_many([]) == []


def test_serialize_many_zero_ip_skips_checksum():
    # Both IPs zero means "not yet addressed": the scalar path stores
    # checksum 0 instead of computing one; the batch path must follow.
    batch = build_tcp(0, 0, 1, 2, payload=b"xy", ip_id=7)
    scalar = copy.deepcopy(batch)
    assert serialize_many([batch]) == [scalar.to_bytes()]
    assert batch.l4.checksum == scalar.l4.checksum == 0


def test_serialize_many_udp_zero_checksum_maps_to_ffff():
    # RFC 768: a computed 0 is transmitted as 0xFFFF.  Solve for a
    # payload word that drives the ones-complement sum to ~0, so the
    # computed checksum is exactly zero on both paths.
    import struct

    from repro.packet.checksum import ones_complement_sum, pseudo_header

    probe = build_udp("10.0.0.1", "10.0.0.2", 5, 5, payload=b"\x00\x00", ip_id=3)
    pseudo = pseudo_header(probe.ip.src, probe.ip.dst, IPProto.UDP, 10)
    head = struct.pack("!HHHH", 5, 5, 10, 0)  # length 10, zero ck field
    base = ones_complement_sum(pseudo + head)
    word = (0xFFFF - base) & 0xFFFF
    magic = build_udp("10.0.0.1", "10.0.0.2", 5, 5,
                      payload=word.to_bytes(2, "big"), ip_id=3)
    scalar = copy.deepcopy(magic)
    wire = scalar.to_bytes()
    assert scalar.l4.checksum == 0xFFFF  # the zero result was remapped
    assert serialize_many([magic]) == [wire]
    assert magic.l4.checksum == 0xFFFF


# ---------------------------------------------------------------------------
# Batched link delivery: exact (time, seq) order parity
# ---------------------------------------------------------------------------


def _run_world(burst: bool):
    """Send the same 40 packets through a one-link sim, burst vs scalar."""
    from repro.packet.builder import as_ip
    from repro.sim import Node, Simulator, connect

    delivered = []

    class Sink(Node):
        def receive(self, packet, iface):
            delivered.append((self.sim.now, packet.ip.identification))

    sim = Simulator()
    a = Sink(sim, "a")
    b = Sink(sim, "b")
    ia = a.add_interface(as_ip("10.0.0.1"), mtu=9200)
    ib = b.add_interface(as_ip("10.0.0.2"), mtu=9200)
    connect(sim, ia, ib, bandwidth_bps=1e9, delay=1e-4, mtu=9200)
    packets = [
        build_tcp("10.0.0.1", "10.0.0.2", 1000 + i % 4, 80,
                  payload=b"z" * (100 + 37 * i), ip_id=i)
        for i in range(40)
    ]
    if burst:
        ia.send_burst(packets)
    else:
        for p in packets:
            ia.send(p)
    sim.run()
    return delivered


def test_send_burst_preserves_delivery_order_and_times():
    assert _run_world(burst=True) == _run_world(burst=False)
