"""Tests for F-PMTUD, classical PMTUD, PLPMTUD, and the fragment survey."""

import pytest

from repro.net import Topology
from repro.pmtud import (
    ClassicalPmtud,
    FPmtudDaemon,
    FPmtudProber,
    FragmentSurvey,
    Plpmtud,
    ProbeEchoDaemon,
    SurveyRates,
    probe_path_with_fragments,
)


def path_topology(mtus, blackhole=False, rtt_delay=0.005):
    """client - r1 - r2 - ... - server with per-segment MTUs.

    ``mtus`` lists the MTU of each link left to right.  ``rtt_delay``
    is the per-link propagation delay.
    """
    topo = Topology()
    client = topo.add_host("client")
    server = topo.add_host("server")
    routers = [
        topo.add_router(f"r{i}", icmp_blackhole=blackhole)
        for i in range(len(mtus) - 1)
    ]
    chain = [client] + routers + [server]
    for index, mtu in enumerate(mtus):
        per_link = rtt_delay / len(mtus)
        topo.link(chain[index], chain[index + 1], mtu=mtu, delay=per_link)
    topo.build_routes()
    return topo, client, server


class TestFPmtud:
    def run_probe(self, mtus, probe_size=9000):
        topo, client, server = path_topology(mtus)
        FPmtudDaemon(server)
        prober = FPmtudProber(client)
        results = []
        prober.probe(server.ip, probe_size, results.append)
        topo.run(until=10.0)
        assert len(results) == 1
        return results[0]

    def test_unfragmented_path_reports_probe_size(self):
        result = self.run_probe([9000, 9000, 9000])
        assert result.pmtu == 9000
        assert not result.was_fragmented

    def test_bottleneck_detected_via_fragment_size(self):
        result = self.run_probe([9000, 1500, 9000])
        assert result.was_fragmented
        # Fragment payloads are 8-byte aligned: within 8 B of the true MTU.
        assert 1492 <= result.pmtu <= 1500

    def test_smallest_hop_wins(self):
        result = self.run_probe([9000, 4000, 1000, 2000])
        assert 992 <= result.pmtu <= 1000

    def test_single_rtt_discovery(self):
        result = self.run_probe([9000, 1500, 9000])
        # One-way delay is 5 ms in this topology -> one ~10 ms round trip.
        assert result.elapsed < 0.011

    def test_works_through_icmp_blackhole(self):
        # F-PMTUD never needs ICMP, so blackholes are irrelevant.
        topo, client, server = path_topology([9000, 1500, 9000], blackhole=True)
        FPmtudDaemon(server)
        prober = FPmtudProber(client)
        results = []
        prober.probe(server.ip, 9000, results.append)
        topo.run(until=10.0)
        assert results and 1492 <= results[0].pmtu <= 1500

    def test_timeout_callback_on_dead_path(self):
        topo, client, server = path_topology([9000, 1500])
        # No daemon on the server: the report never comes.
        prober = FPmtudProber(client)
        outcomes = []
        prober.probe(server.ip, 9000, outcomes.append, timeout=1.0,
                     on_timeout=lambda: outcomes.append("timeout"))
        topo.run(until=5.0)
        assert outcomes == ["timeout"]


class TestClassicalPmtud:
    def test_converges_with_icmp(self):
        topo, client, server = path_topology([9000, 1500, 9000])
        ProbeEchoDaemon(server)
        pmtud = ClassicalPmtud(client)
        results = []
        pmtud.discover(server.ip, 9000, results.append)
        topo.run(until=60.0)
        assert len(results) == 1
        assert results[0].pmtu == 1500
        assert results[0].icmp_received >= 1
        assert not results[0].blackholed

    def test_multi_bottleneck_steps_down(self):
        topo, client, server = path_topology([9000, 4000, 1500, 9000])
        ProbeEchoDaemon(server)
        pmtud = ClassicalPmtud(client)
        results = []
        pmtud.discover(server.ip, 9000, results.append)
        topo.run(until=60.0)
        assert results[0].pmtu == 1500
        assert results[0].icmp_received >= 2

    def test_blackhole_fails_discovery(self):
        topo, client, server = path_topology([9000, 1500, 9000], blackhole=True)
        ProbeEchoDaemon(server)
        pmtud = ClassicalPmtud(client)
        results = []
        pmtud.discover(server.ip, 9000, results.append)
        topo.run(until=60.0)
        assert results[0].blackholed
        assert results[0].pmtu is None

    def test_uniform_path_one_probe(self):
        topo, client, server = path_topology([1500, 1500])
        ProbeEchoDaemon(server)
        pmtud = ClassicalPmtud(client)
        results = []
        pmtud.discover(server.ip, 1500, results.append)
        topo.run(until=10.0)
        assert results[0].pmtu == 1500
        assert results[0].probes_sent == 1


class TestPlpmtud:
    def run_search(self, mtus, local_mtu=9000, blackhole=True):
        # Blackhole routers everywhere: PLPMTUD must not rely on ICMP.
        topo, client, server = path_topology(mtus, blackhole=blackhole)
        ProbeEchoDaemon(server)
        search = Plpmtud(client)
        results = []
        search.discover(server.ip, local_mtu, results.append)
        topo.run(until=300.0)
        assert len(results) == 1
        return results[0]

    def test_finds_pmtu_without_icmp(self):
        result = self.run_search([9000, 1500, 9000])
        assert 1492 <= result.pmtu <= 1500

    def test_full_mtu_path_fast_path(self):
        result = self.run_search([9000, 9000, 9000])
        assert result.pmtu == 9000
        assert result.timeouts == 0

    def test_needs_many_probes_and_timeouts(self):
        result = self.run_search([9000, 1500, 9000])
        assert result.probes_sent >= 4
        assert result.timeouts >= 1
        # Each timed-out size costs seconds: discovery is slow.
        assert result.elapsed > 1.0

    def test_much_slower_than_fpmtud(self):
        plp = self.run_search([9000, 1000, 9000])
        topo, client, server = path_topology([9000, 1000, 9000])
        FPmtudDaemon(server)
        prober = FPmtudProber(client)
        fast = []
        prober.probe(server.ip, 9000, fast.append)
        topo.run(until=10.0)
        assert fast[0].elapsed * 50 < plp.elapsed
        # And they agree on the PMTU (modulo fragment alignment).
        assert abs(fast[0].pmtu - plp.pmtu) <= 8


class TestSurvey:
    def test_rates_match_paper(self):
        survey = FragmentSurvey()
        result = survey.run()
        assert result.population == 389_428
        assert result.fragment_success_rate > 0.9995
        failures = result.filtered_last_hop + result.unresponsive
        assert 30 <= failures <= 90  # paper: 59

    def test_icmp_rate_matches_2018_study(self):
        result = FragmentSurvey().run(50_000)
        assert 0.46 < result.icmp_success_rate < 0.56

    def test_packet_level_filtering_mechanism(self):
        assert probe_path_with_fragments(filtering_last_hop=False)
        assert not probe_path_with_fragments(filtering_last_hop=True)

    def test_custom_rates(self):
        rates = SurveyRates(fragment_filter=0.5, unresponsive_to_fragments=0.0,
                            icmp_blackhole=1.0)
        result = FragmentSurvey(rates).run(10_000)
        assert 0.4 < result.filtered_last_hop / 10_000 < 0.6
        assert result.icmp_pmtud_ok == 0
