"""Property-based tests on whole-datapath invariants.

These go beyond per-engine tests: a GatewayWorker (classification,
merge, split, caravan, MSS clamp together) must never corrupt a byte
stream or a datagram boundary, for any interleaving hypothesis throws
at it.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Bound, GatewayConfig, GatewayWorker, decode_caravan, is_caravan
from repro.nic.rss import RssDistributor
from repro.packet import FlowKey, IPProto, TCPFlags, build_tcp, build_udp


def patterned(length, tag):
    return bytes((tag * 7 + i) % 251 for i in range(length))


class TestWorkerStreamIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=1448), min_size=1, max_size=60),
        data=st.data(),
    )
    def test_inbound_merge_preserves_per_flow_streams(self, sizes, data):
        """Any mix of in-order flows comes out as the same byte streams."""
        worker = GatewayWorker(GatewayConfig(hairpin_small_flows=False))
        flow_count = data.draw(st.integers(min_value=1, max_value=4))
        seqs = [0] * flow_count
        sent = [bytearray() for _ in range(flow_count)]
        outputs = []
        rng = random.Random(data.draw(st.integers(min_value=0, max_value=1000)))
        for size in sizes:
            flow = rng.randrange(flow_count)
            payload = patterned(size, flow)
            packet = build_tcp("198.51.100.9", "10.1.0.9", 6000 + flow, 80,
                               payload=payload, seq=seqs[flow], flags=TCPFlags.ACK)
            seqs[flow] += size
            sent[flow].extend(payload)
            outputs.extend(worker.process(packet, Bound.INBOUND))
        outputs.extend(worker.merge.flush())

        received = [bytearray() for _ in range(flow_count)]
        for packet in outputs:
            flow = packet.tcp.src_port - 6000
            received[flow].extend(packet.payload)
        for flow in range(flow_count):
            assert bytes(received[flow]) == bytes(sent[flow])

    @settings(max_examples=20, deadline=None)
    @given(
        payload_len=st.integers(min_value=1, max_value=60000),
        emtu=st.integers(min_value=576, max_value=1500),
    )
    def test_outbound_split_respects_any_emtu(self, payload_len, emtu):
        worker = GatewayWorker(GatewayConfig(emtu=emtu, hairpin_small_flows=False))
        packet = build_tcp("10.1.0.9", "198.51.100.9", 80, 6000,
                           payload=patterned(min(payload_len, 8960), 1))
        outputs = worker.process(packet, Bound.OUTBOUND)
        assert all(p.total_len <= emtu for p in outputs)
        assert b"".join(p.payload for p in outputs) == packet.payload

    @settings(max_examples=20, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=30),
        size=st.integers(min_value=100, max_value=1400),
    )
    def test_udp_roundtrip_through_both_directions(self, count, size):
        """Datagrams caravan'd inbound then split outbound are identical."""
        inbound = GatewayWorker(GatewayConfig(hairpin_small_flows=False))
        outbound = GatewayWorker(GatewayConfig(hairpin_small_flows=False))
        originals = []
        transported = []
        for index in range(count):
            packet = build_udp("198.51.100.9", "10.1.0.9", 7000, 443,
                               payload=patterned(size, index), ip_id=200 + index)
            originals.append(packet)
            transported.extend(inbound.process(packet, Bound.INBOUND))
        transported.extend(inbound.caravan_merge.flush())
        restored = []
        for packet in transported:
            restored.extend(outbound.process(packet, Bound.OUTBOUND))
        assert [p.payload for p in restored] == [p.payload for p in originals]

    @settings(max_examples=15, deadline=None)
    @given(mss=st.integers(min_value=100, max_value=65000))
    def test_any_syn_mss_clamped_into_bounds(self, mss):
        worker = GatewayWorker(GatewayConfig())
        syn_out = build_tcp("10.1.0.9", "198.51.100.9", 80, 6000,
                            flags=TCPFlags.SYN, mss=mss)
        [out] = worker.process(syn_out, Bound.OUTBOUND)
        assert out.tcp.mss_option <= 1460
        syn_in = build_tcp("198.51.100.9", "10.1.0.9", 6000, 80,
                           flags=TCPFlags.SYN, mss=mss)
        [out] = worker.process(syn_in, Bound.INBOUND)
        assert out.tcp.mss_option >= min(mss, 8960)


class TestRssProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        src=st.integers(min_value=1, max_value=0xFFFFFFFE),
        sport=st.integers(min_value=1, max_value=65535),
        dport=st.integers(min_value=1, max_value=65535),
        queues=st.integers(min_value=1, max_value=64),
    )
    def test_queue_always_in_range_and_stable(self, src, sport, dport, queues):
        rss = RssDistributor(queues=queues)
        key = FlowKey(IPProto.TCP, src, sport, 0x0A010001, dport)
        queue = rss.queue_for(key)
        assert 0 <= queue < queues
        assert rss.queue_for(key) == queue
