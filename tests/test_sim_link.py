"""Tests for links, queues, netem, and interfaces."""

import random

import pytest

from repro.packet import Packet, build_udp
from repro.sim import Interface, Netem, Node, Simulator, connect


class Sink(Node):
    """Collects everything delivered to it."""

    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, interface):
        self.received.append((self.sim.now, packet))


def make_pair(sim, **link_kwargs):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    ia = a.add_interface(1, mtu=link_kwargs.get("mtu", 1500))
    ib = b.add_interface(2, mtu=link_kwargs.get("mtu", 1500))
    links = connect(sim, ia, ib, **link_kwargs)
    return a, b, ia, ib, links


def udp(total_len=1500):
    return build_udp("10.0.0.1", "10.0.0.2", 1, 2, payload=b"\0" * (total_len - 28))


def test_delivery_latency_is_serialization_plus_propagation():
    sim = Simulator()
    _a, b, ia, _ib, _ = make_pair(sim, bandwidth_bps=1e9, delay=1e-3)
    packet = udp(1500)
    ia.send(packet)
    sim.run()
    arrival = b.received[0][0]
    expected = packet.wire_len * 8 / 1e9 + 1e-3
    assert arrival == pytest.approx(expected)


def test_back_to_back_packets_serialize_sequentially():
    sim = Simulator()
    _a, b, ia, _ib, _ = make_pair(sim, bandwidth_bps=1e9, delay=0.0)
    first, second = udp(1500), udp(1500)
    ia.send(first)
    ia.send(second)
    sim.run()
    gap = b.received[1][0] - b.received[0][0]
    assert gap == pytest.approx(first.wire_len * 8 / 1e9)


def test_oversized_packet_dropped_with_mtu_counter():
    sim = Simulator()
    _a, b, ia, _ib, (forward, _) = make_pair(sim, mtu=1500)
    assert not ia.send(udp(1501))
    sim.run()
    assert b.received == []
    assert forward.stats.dropped_mtu == 1


def test_queue_overflow_drops():
    sim = Simulator()
    _a, b, ia, _ib, (forward, _) = make_pair(sim, bandwidth_bps=1e6, queue_bytes=3000)
    results = [ia.send(udp(1500)) for _ in range(5)]
    sim.run()
    assert results.count(False) > 0
    assert forward.stats.dropped_queue > 0
    assert len(b.received) == results.count(True)


def test_netem_loss_drops_fraction():
    sim = Simulator()
    netem = Netem(loss=0.5)
    _a, b, ia, _ib, (forward, _) = make_pair(
        sim, bandwidth_bps=100e9, netem=netem, rng=random.Random(7)
    )
    for _ in range(400):
        ia.send(udp(100))
    sim.run()
    delivered = len(b.received)
    assert 120 < delivered < 280  # ~200 expected
    assert forward.stats.dropped_loss == 400 - delivered


def test_netem_adds_delay():
    sim = Simulator()
    netem = Netem(delay=0.010)
    _a, b, ia, _ib, _ = make_pair(sim, bandwidth_bps=100e9, delay=0.0, netem=netem)
    ia.send(udp(100))
    sim.run()
    assert b.received[0][0] >= 0.010


def test_netem_validation():
    with pytest.raises(ValueError):
        Netem(loss=1.5)
    with pytest.raises(ValueError):
        Netem(delay=-1)


def test_netem_wan_profile_matches_paper():
    profile = Netem.wan()
    assert profile.delay == pytest.approx(0.005)  # 10 ms end-to-end
    assert profile.loss == pytest.approx(0.0001)  # 0.01 %


def test_interface_counters():
    sim = Simulator()
    _a, b, ia, ib, _ = make_pair(sim)
    packet = udp(500)
    ia.send(packet)
    sim.run()
    assert ia.tx_packets == 1 and ia.tx_bytes == 500
    assert ib.rx_packets == 1 and ib.rx_bytes == 500


def test_send_without_link_returns_false():
    sim = Simulator()
    node = Sink(sim)
    interface = node.add_interface(1)
    assert not interface.send(udp(100))


def test_bidirectional_traffic():
    sim = Simulator()
    a, b, ia, ib, _ = make_pair(sim)
    ia.send(udp(100))
    ib.send(udp(200))
    sim.run()
    assert len(a.received) == 1 and len(b.received) == 1
