"""PtbListener: the hardened bridge from ICMP PTB to the clamp cache."""

import pytest

from repro.packet import ICMPMessage, IPProto, build_icmp, build_tcp
from repro.pmtud import HardeningPolicy
from repro.resilience import PmtuCache, PtbListener

from .conftest import star_topology


VICTIM_PORT = 40001
SERVER_PORT = 9100


def make_world(policy):
    topo, client, server, attacker = star_topology()
    cache = PmtuCache(default_ttl=30.0, policy=policy)
    listener = PtbListener(client, cache, policy=policy, link_mtu=1500)
    return topo, client, server, attacker, cache, listener


def send_ptb(topo, attacker, victim_ip, mtu, quoted, at=0.0):
    message = ICMPMessage.frag_needed(mtu, quoted)
    topo.sim.schedule_at(at, attacker.send,
                         build_icmp(attacker.ip, victim_ip, message))


def quote_flow(src_ip, dst_ip, sport=VICTIM_PORT, dport=SERVER_PORT):
    return build_tcp(src_ip, dst_ip, sport, dport).to_bytes()


class TestHardenedListener:
    def test_plausible_lowering_is_accepted_flow_scoped(self):
        topo, client, server, attacker, cache, listener = make_world(
            HardeningPolicy.hardened())
        send_ptb(topo, attacker, client.ip, 1100,
                 quote_flow(client.ip, server.ip))
        topo.run(until=0.1)
        assert listener.ptb_accepted == 1
        flow = (IPProto.TCP, client.ip, VICTIM_PORT, server.ip, SERVER_PORT)
        entry = cache.peek(server.ip, topo.sim.now, flow=flow)
        assert entry is not None and entry.pmtu == 1100
        assert entry.trust == "icmp" and entry.flow == flow
        # The hint is scoped: other flows to the same destination (and
        # the wildcard) are untouched.
        assert cache.peek(server.ip, topo.sim.now) is None

    def test_quoted_inner_source_must_be_ours(self):
        topo, client, server, attacker, cache, listener = make_world(
            HardeningPolicy.hardened())
        # The forger quotes its own flow, not the victim's.
        send_ptb(topo, attacker, client.ip, 1100,
                 quote_flow(attacker.ip, server.ip))
        topo.run(until=0.1)
        assert listener.ptb_accepted == 0
        assert listener.rejections == {"inner-src": 1}
        assert len(cache) == 0

    @pytest.mark.parametrize("mtu", [296, 512])
    def test_sub_plausible_hints_rejected(self, mtu):
        topo, client, server, attacker, cache, listener = make_world(
            HardeningPolicy.hardened())
        send_ptb(topo, attacker, client.ip, mtu,
                 quote_flow(client.ip, server.ip))
        topo.run(until=0.1)
        assert listener.rejections == {"bounds": 1}
        assert len(cache) == 0

    def test_hints_above_link_mtu_rejected(self):
        topo, client, server, attacker, cache, listener = make_world(
            HardeningPolicy.hardened())
        send_ptb(topo, attacker, client.ip, 8996,
                 quote_flow(client.ip, server.ip))
        topo.run(until=0.1)
        assert listener.rejections == {"bounds": 1}

    def test_hintless_ptb_rejected(self):
        topo, client, server, attacker, cache, listener = make_world(
            HardeningPolicy.hardened())
        send_ptb(topo, attacker, client.ip, 0,
                 quote_flow(client.ip, server.ip))
        topo.run(until=0.1)
        assert listener.rejections == {"no-hint": 1}

    def test_flood_is_rate_limited(self):
        topo, client, server, attacker, cache, listener = make_world(
            HardeningPolicy.hardened())
        # Forty descending (always-lowering) hints inside 40 ms: only
        # the burst allowance plus a token or so can land.
        for index in range(40):
            send_ptb(topo, attacker, client.ip, 1400 - 5 * index,
                     quote_flow(client.ip, server.ip), at=index * 1e-3)
        topo.run(until=0.5)
        assert listener.ptb_received == 40
        assert listener.ptb_accepted <= 6
        assert listener.rejections["rate-limited"] >= 30

    def test_raise_over_probe_learned_entry_rejected(self):
        topo, client, server, attacker, cache, listener = make_world(
            HardeningPolicy.hardened())
        cache.learn(server.ip, 1280, 0.0, source="fpmtud")  # solicited
        send_ptb(topo, attacker, client.ip, 1400,
                 quote_flow(client.ip, server.ip))
        topo.run(until=0.1)
        assert listener.rejections == {"raise": 1}
        assert cache.poison_rejected == 1
        assert cache.peek(server.ip, topo.sim.now).pmtu == 1280

    def test_lowering_under_probe_learned_entry_accepted(self):
        topo, client, server, attacker, cache, listener = make_world(
            HardeningPolicy.hardened())
        cache.learn(server.ip, 1280, 0.0, source="fpmtud")
        send_ptb(topo, attacker, client.ip, 1000,
                 quote_flow(client.ip, server.ip))
        topo.run(until=0.1)
        assert listener.ptb_accepted == 1  # lowering is fail-safe


class TestUnhardenedListener:
    def test_one_forged_ptb_poisons_every_flow(self):
        topo, client, server, attacker, cache, listener = make_world(
            HardeningPolicy.unhardened())
        # Wrong inner source, implausible value — accepted anyway.
        send_ptb(topo, attacker, client.ip, 296,
                 quote_flow(attacker.ip, server.ip))
        topo.run(until=0.1)
        assert listener.ptb_accepted == 1
        entry = cache.peek(server.ip, topo.sim.now)
        assert entry is not None and entry.pmtu == 296
        # Stored under the destination wildcard: every flow sharing the
        # address sees the poison.
        assert entry.flow is None

    def test_raise_accepted_by_trusting_cache(self):
        topo, client, server, attacker, cache, listener = make_world(
            HardeningPolicy.unhardened())
        cache.learn(server.ip, 1280, 0.0, source="fpmtud")
        send_ptb(topo, attacker, client.ip, 1496,
                 quote_flow(client.ip, server.ip))
        topo.run(until=0.1)
        assert listener.ptb_accepted == 1
        assert cache.peek(server.ip, topo.sim.now).pmtu == 1496

    def test_summary_counts_by_reason(self):
        topo, client, server, attacker, cache, listener = make_world(
            HardeningPolicy.hardened())
        send_ptb(topo, attacker, client.ip, 296,
                 quote_flow(client.ip, server.ip), at=0.0)
        send_ptb(topo, attacker, client.ip, 1100,
                 quote_flow(attacker.ip, server.ip), at=0.01)
        topo.run(until=0.1)
        summary = listener.summary()
        assert summary["received"] == 2 and summary["accepted"] == 0
        assert summary["rejections"] == {"bounds": 1, "inner-src": 1}
