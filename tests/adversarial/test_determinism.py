"""Replayability of the attack corpus.

Attack scenarios must be pure functions of (name, seed, hardened):
same inputs, same packet trace, same digest.  CI runs the corpus twice
and diffs — these tests are the local version of that gate.
"""

import pytest

from repro.chaos import run_attack_scenario

# A cheap cross-section: one per attack family plus the control.
REPLAYED = [
    "forged-report-raise",
    "cache-poison-cross-flow",
    "benign-control",
]


@pytest.mark.parametrize("name", REPLAYED)
@pytest.mark.parametrize("hardened", [True, False], ids=["hardened", "unhardened"])
def test_rerun_is_byte_identical(name, hardened):
    first = run_attack_scenario(name, seed=7, hardened=hardened)
    second = run_attack_scenario(name, seed=7, hardened=hardened)
    assert first.digest == second.digest
    assert first.estimates == second.estimates
    assert first.compromised == second.compromised


def test_result_repr_names_mode_and_verdict():
    result = run_attack_scenario("benign-control", seed=7, hardened=True)
    text = repr(result)
    assert "benign-control" in text and "hardened" in text


@pytest.mark.parametrize("name", ["forged-report-raise"])
def test_different_seeds_do_not_change_the_verdict(name):
    for seed in (1, 7, 23):
        hardened = run_attack_scenario(name, seed=seed, hardened=True)
        unhardened = run_attack_scenario(name, seed=seed, hardened=False)
        assert not hardened.compromised, f"seed {seed}"
        assert unhardened.compromised, f"seed {seed}"
