"""Shared helpers for the adversarial PMTUD suite.

Scenario worlds are deterministic (seeded sim, seeded nonces, no wall
clock), so one differential run per scenario is shared across every
test that inspects it via :func:`differential` — the suite stays fast
without weakening any assertion.
"""

import functools

from repro.chaos.attacks import run_attack_scenario
from repro.net import Topology

DIFF_SEED = 7


@functools.lru_cache(maxsize=None)
def differential(name, seed=DIFF_SEED):
    """One (hardened, unhardened) result pair per scenario, memoized."""
    hardened = run_attack_scenario(name, seed=seed, hardened=True)
    unhardened = run_attack_scenario(name, seed=seed, hardened=False)
    return hardened, unhardened


def star_topology(mtu=1500, delay=0.0005):
    """client / server / attacker joined through one router.

    The attacker can reach both endpoints and spoof arbitrary source
    addresses (the links do not verify them), which is all an off-path
    forger needs.
    """
    topo = Topology()
    client = topo.add_host("client")
    server = topo.add_host("server")
    attacker = topo.add_host("attacker")
    router = topo.add_router("r0")
    for host in (client, server, attacker):
        topo.link(host, router, mtu=mtu, delay=delay)
    topo.build_routes()
    return topo, client, server, attacker
