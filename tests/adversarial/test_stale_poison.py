"""Regression: a poisoned cache entry must not outlive a contradicting probe.

The original fallback chain wrote its measurement under the wildcard
key and walked away.  A flow-scoped entry poisoned earlier (forged PTB
accepted as a plausible lowering — lowering is deliberately fail-safe)
kept winning that flow's lookups until its TTL ran out: the datapath
kept micro-splitting at the forged size *after* a fresh probe had
measured the truth.  ``ResilientPmtud._finish`` now reconciles the
cache — every live entry contradicted by the measurement is dropped.
"""

from repro.net import Topology
from repro.pmtud import FPmtudDaemon, FPmtudProber, HardeningPolicy, Plpmtud
from repro.resilience import PmtuCache, ResilientPmtud

DST = 77
FLOW = (6, 1, 40001, DST, 9100)


class TestCacheReconcile:
    def test_contradicted_entries_dropped(self):
        cache = PmtuCache(default_ttl=30.0, policy=HardeningPolicy.hardened())
        cache.learn(DST, 600, 0.0, source="ptb", flow=FLOW, trust="icmp")
        dropped = cache.reconcile(DST, 1276, 0.1)
        assert dropped == 1
        assert cache.contradictions == 1
        assert cache.peek(DST, 0.2, flow=FLOW) is None

    def test_agreeing_entries_survive(self):
        cache = PmtuCache(default_ttl=30.0, policy=HardeningPolicy.hardened())
        cache.learn(DST, 1276, 0.0, source="ptb", flow=FLOW, trust="icmp")
        assert cache.reconcile(DST, 1276, 0.1) == 0
        assert cache.peek(DST, 0.2, flow=FLOW) is not None

    def test_other_destinations_untouched(self):
        cache = PmtuCache(default_ttl=30.0, policy=HardeningPolicy.hardened())
        cache.learn(DST, 600, 0.0, source="ptb", flow=FLOW, trust="icmp")
        cache.learn(DST + 1, 600, 0.0, source="ptb", trust="icmp")
        assert cache.reconcile(DST, 1276, 0.1) == 1
        assert cache.peek(DST + 1, 0.2) is not None

    def test_expired_entries_not_counted_as_contradictions(self):
        cache = PmtuCache(default_ttl=30.0, policy=HardeningPolicy.hardened())
        cache.learn(DST, 600, 0.0, ttl=1.0, source="ptb", flow=FLOW,
                    trust="icmp")
        assert cache.reconcile(DST, 1276, 5.0) == 0


class TestDiscoveryReconcilesPoison:
    def build_world(self):
        topo = Topology()
        client = topo.add_host("client")
        server = topo.add_host("server")
        router = topo.add_router("r0")
        topo.link(client, router, mtu=1500, delay=0.0005)
        topo.link(router, server, mtu=1280, delay=0.0005)
        topo.build_routes()
        policy = HardeningPolicy.hardened()
        cache = PmtuCache(default_ttl=30.0, policy=policy)
        FPmtudDaemon(server)
        prober = FPmtudProber(client, policy=policy, link_mtu=1500)
        plpmtud = Plpmtud(client, policy=policy)
        resilient = ResilientPmtud(client, cache=cache, prober=prober,
                                   plpmtud=plpmtud, fpmtud_timeout=0.3)
        return topo, client, server, cache, resilient

    def test_probe_evicts_the_stale_poison(self):
        topo, client, server, cache, resilient = self.build_world()
        flow = (6, client.ip, 40001, server.ip, 9100)
        # The poison: a forged-but-plausible lowering the hardened stack
        # accepts by design (fail-safe), scoped to the victim flow.
        cache.learn(server.ip, 600, 0.0, source="ptb", flow=flow,
                    trust="icmp")
        # Reproduce the reuse first: until a probe says otherwise, the
        # datapath sizing this flow reads 600 B from the cache.
        assert cache.lookup(server.ip, 0.0, flow=flow).pmtu == 600

        outcomes = []
        topo.sim.schedule_at(0.001, resilient.discover, server.ip, 1500,
                             outcomes.append)
        topo.run(until=2.0)

        assert outcomes and outcomes[0].source == "fpmtud"
        measured = outcomes[0].pmtu
        assert 1272 <= measured <= 1280  # 8-aligned fragments of the 1280 hop
        # The regression assertion: the poisoned flow entry is gone and
        # the flow now sees the measured wildcard value.
        assert cache.contradictions >= 1
        entry = cache.peek(server.ip, topo.sim.now, flow=flow)
        assert entry is not None and entry.pmtu == measured
        assert any(step.startswith("cache-reconciled") for step in
                   outcomes[0].trail)
