"""Unit tests for the probe-path defenses.

Each defense is exercised in a three-host star world (client, server,
attacker behind one router) where the attacker can spoof arbitrary
source addresses — exactly the off-path forger the hardening targets.
"""

import dataclasses

import pytest

from repro.pmtud import (
    ECHO_PORT,
    FPMTUD_PORT,
    MIN_PLAUSIBLE_PMTU,
    FPmtudDaemon,
    FPmtudProber,
    HardeningPolicy,
    Plpmtud,
    ReportRateLimiter,
    pack_echo_ack,
)
from repro.pmtud.echo import parse_echo_ack
from repro.pmtud.fpmtud import _pack_report
from repro.packet import build_udp

from .conftest import star_topology


class TestHardeningPolicy:
    def test_hardened_turns_every_defense_on(self):
        policy = HardeningPolicy.hardened()
        assert policy.probe_nonces and policy.pmtu_bounds
        assert policy.reject_raises and policy.rate_limit_reports
        assert policy.validate_inner and policy.per_flow_cache

    def test_unhardened_turns_every_defense_off(self):
        policy = HardeningPolicy.unhardened()
        assert not any(
            (policy.probe_nonces, policy.pmtu_bounds, policy.reject_raises,
             policy.rate_limit_reports, policy.validate_inner,
             policy.per_flow_cache)
        )

    def test_policy_is_frozen_but_replaceable(self):
        policy = HardeningPolicy.hardened()
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.probe_nonces = False
        weakened = dataclasses.replace(policy, probe_nonces=False)
        assert not weakened.probe_nonces and weakened.pmtu_bounds

    def test_plausibility_floor_is_rfc_791(self):
        assert MIN_PLAUSIBLE_PMTU == 576


class TestReportRateLimiter:
    def test_burst_then_throttle(self):
        limiter = ReportRateLimiter(rate=10.0, burst=4)
        verdicts = [limiter.allow(0.0) for _ in range(6)]
        assert verdicts == [True] * 4 + [False] * 2
        assert limiter.allowed == 4 and limiter.throttled == 2

    def test_tokens_refill_at_rate(self):
        limiter = ReportRateLimiter(rate=10.0, burst=4)
        for _ in range(4):
            assert limiter.allow(0.0)
        assert not limiter.allow(0.05)  # half a token: not enough
        assert limiter.allow(0.16)      # >1 token accumulated by now

    def test_refill_never_exceeds_burst(self):
        limiter = ReportRateLimiter(rate=10.0, burst=2)
        assert limiter.allow(0.0) and limiter.allow(0.0)
        # A long quiet period refills to the burst cap, not beyond.
        verdicts = [limiter.allow(100.0) for _ in range(4)]
        assert verdicts == [True, True, False, False]

    def test_decisions_are_deterministic(self):
        times = [0.0, 0.01, 0.02, 0.3, 0.31, 0.9, 2.0]
        first = [ReportRateLimiter(5.0, 2).allow(t) for t in times]
        second = [ReportRateLimiter(5.0, 2).allow(t) for t in times]
        assert first == second

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ReportRateLimiter(rate=0.0, burst=4)
        with pytest.raises(ValueError):
            ReportRateLimiter(rate=1.0, burst=0)


class TestProbeNonces:
    def test_unhardened_ids_are_guessable(self):
        topo, client, server, _attacker = star_topology()
        prober = FPmtudProber(client)  # defaults to the trusting stack
        ids = [prober.probe(server.ip, 1500, lambda _r: None, timeout=9.0)
               for _ in range(3)]
        assert ids == [1, 2, 3]

    def test_hardened_ids_are_nonces(self):
        topo, client, server, _attacker = star_topology()
        prober = FPmtudProber(client, policy=HardeningPolicy.hardened(),
                              link_mtu=1500, nonce_seed=5)
        ids = [prober.probe(server.ip, 1500, lambda _r: None, timeout=9.0)
               for _ in range(3)]
        assert len(set(ids)) == 3
        assert all(probe_id > 0 for probe_id in ids)
        # Not the sequential counter an off-path attacker could walk.
        assert ids != [1, 2, 3]

    def test_nonces_are_seed_deterministic(self):
        def first_id(seed):
            topo, client, server, _attacker = star_topology()
            prober = FPmtudProber(client, policy=HardeningPolicy.hardened(),
                                  link_mtu=1500, nonce_seed=seed)
            return prober.probe(server.ip, 1500, lambda _r: None, timeout=9.0)

        assert first_id(11) == first_id(11)
        assert first_id(11) != first_id(12)


class TestForgedReports:
    def _forge_report(self, world, probe_id, sizes, at):
        topo, client, server, attacker = world
        payload = _pack_report(probe_id, sizes)
        packet = build_udp(server.ip, client.ip, FPMTUD_PORT, 52000, payload)
        topo.sim.schedule_at(at, attacker.send, packet)

    def test_unhardened_prober_swallows_a_forged_report(self):
        world = topo, client, server, attacker = star_topology()
        FPmtudDaemon(server)
        prober = FPmtudProber(client, src_port=52000)
        results = []
        prober.probe(server.ip, 1500, results.append, timeout=5.0)
        # The forged report beats the genuine one home (1 hop vs 2).
        self._forge_report(world, probe_id=1, sizes=[8996], at=0.0)
        topo.run(until=1.0)
        assert results and results[0].pmtu == 8996  # inflated: blackhole bait

    def test_nonces_make_forged_ids_land_nowhere(self):
        world = topo, client, server, attacker = star_topology()
        FPmtudDaemon(server)
        prober = FPmtudProber(client, src_port=52000,
                              policy=HardeningPolicy.hardened(),
                              link_mtu=1500, nonce_seed=3)
        results = []
        prober.probe(server.ip, 1500, results.append, timeout=5.0)
        for guess in range(1, 9):
            self._forge_report(world, probe_id=guess, sizes=[8996],
                              at=guess * 1e-4)
        topo.run(until=1.0)
        assert prober.rejections["unknown-id"] == 8
        assert results and results[0].pmtu == 1500  # the genuine report won

    def test_bounds_reject_inflation_even_with_guessed_id(self):
        # Nonces off, bounds on: the attacker hits the live id but the
        # value itself is implausible, and the probe stays pending for
        # the genuine report.
        world = topo, client, server, attacker = star_topology()
        FPmtudDaemon(server)
        policy = dataclasses.replace(HardeningPolicy.hardened(),
                                     probe_nonces=False)
        prober = FPmtudProber(client, src_port=52000, policy=policy,
                              link_mtu=1500)
        results = []
        prober.probe(server.ip, 1500, results.append, timeout=5.0)
        self._forge_report(world, probe_id=1, sizes=[8996], at=0.0)
        topo.run(until=1.0)
        assert prober.rejections["bounds"] == 1
        assert results and results[0].pmtu == 1500

    def test_bounds_reject_micro_segmentation_bait(self):
        world = topo, client, server, attacker = star_topology()
        FPmtudDaemon(server)
        policy = dataclasses.replace(HardeningPolicy.hardened(),
                                     probe_nonces=False)
        prober = FPmtudProber(client, src_port=52000, policy=policy,
                              link_mtu=1500)
        results = []
        prober.probe(server.ip, 1500, results.append, timeout=5.0)
        self._forge_report(world, probe_id=1, sizes=[296], at=0.0)
        topo.run(until=1.0)
        assert prober.rejections["bounds"] == 1
        assert results and results[0].pmtu == 1500


class TestPlpmtudAckForgery:
    def _spray_acks(self, world, dst_port, until=1.5, period=0.01, ids=10):
        """Blind-confirm every plausible sequential probe id, repeatedly."""
        topo, client, server, attacker = world
        burst = 0
        at = 1e-3
        while at < until:
            for guess in range(1, ids + 1):
                packet = build_udp(server.ip, client.ip, ECHO_PORT, dst_port,
                                   pack_echo_ack(guess))
                topo.sim.schedule_at(at + guess * 1e-5, attacker.send, packet)
            burst += 1
            at += period

    def test_unhardened_search_inflates_with_no_daemon_at_all(self):
        # No echo daemon runs on the server: every honest outcome is a
        # timeout.  Spraying acks at the guessable id counter convinces
        # the trusting search that 1500 B passed.
        world = topo, client, server, attacker = star_topology()
        plpmtud = Plpmtud(client, src_port=54000, probe_timeout=0.05,
                          max_retries=2)
        results = []
        plpmtud.discover(server.ip, 1500, results.append)
        self._spray_acks(world, dst_port=54000)
        topo.run(until=5.0)
        assert results and results[0].pmtu == 1500
        assert results[0].timeouts == 0  # it never noticed anything wrong

    def test_nonced_search_ignores_the_spray(self):
        world = topo, client, server, attacker = star_topology()
        plpmtud = Plpmtud(client, src_port=54000, probe_timeout=0.05,
                          max_retries=2, policy=HardeningPolicy.hardened(),
                          nonce_seed=9)
        results = []
        plpmtud.discover(server.ip, 1500, results.append)
        self._spray_acks(world, dst_port=54000)
        topo.run(until=5.0)
        assert plpmtud.acks_ignored > 0
        # Nothing confirmed anything: the search bottoms out honestly.
        assert results and results[0].pmtu == 576
        assert results[0].timeouts > 0


def test_echo_ack_roundtrip():
    assert parse_echo_ack(pack_echo_ack(0xDEADBEEF)) == 0xDEADBEEF
    assert parse_echo_ack(b"junk") is None
