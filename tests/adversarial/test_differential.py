"""The differential attack corpus: hardened holds, unhardened breaks.

Every scenario in :data:`repro.chaos.ATTACK_SCENARIOS` is run twice —
once with every defense on, once with the paper's original trusting
stack — and the compromise predicate must separate the two.  That is
the teeth of this PR: a defense that cannot be shown *off* is not
demonstrably a defense.
"""

import pytest

from repro.chaos import ATTACK_SCENARIOS, attack_corpus, build_attack_plan

from .conftest import DIFF_SEED, differential

ALL_SCENARIOS = sorted(ATTACK_SCENARIOS)
ATTACKS = [name for name in ALL_SCENARIOS if name != "benign-control"]

# The plausibility band the hardened stack enforces: [576, bottleneck].
PLAUSIBLE_FLOOR = 576
BOTTLENECK_MTU = 1280


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_hardened_stack_not_compromised(name):
    hardened, _ = differential(name)
    assert not hardened.compromised, (
        f"hardened stack compromised under {name}: {hardened.notes}"
    )


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_hardened_stack_no_oracle_violations(name):
    hardened, _ = differential(name)
    assert hardened.violations == [], (
        f"oracle violations under {name}: {hardened.violations}"
    )


@pytest.mark.parametrize("name", ATTACKS)
def test_unhardened_stack_is_compromised(name):
    _, unhardened = differential(name)
    assert unhardened.compromised, (
        f"attack {name} did not measurably break the unhardened stack — "
        f"the differential has no teeth: {unhardened.notes}"
    )


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_hardened_estimates_stay_in_plausible_band(name):
    hardened, _ = differential(name)
    for estimate in hardened.estimates:
        assert PLAUSIBLE_FLOOR <= estimate <= BOTTLENECK_MTU, (
            f"{name}: hardened stack acted on estimate {estimate} B "
            f"outside [{PLAUSIBLE_FLOOR}, {BOTTLENECK_MTU}]"
        )


def test_benign_control_is_safe_in_both_modes():
    hardened, unhardened = differential("benign-control")
    assert not hardened.compromised
    assert not unhardened.compromised


def test_corpus_enumerates_every_scenario():
    corpus = attack_corpus()
    assert [name for name, _seed in corpus] == ALL_SCENARIOS
    assert all(seed == DIFF_SEED for _name, seed in corpus)


def test_corpus_has_all_attack_families():
    # One registered scenario per documented attack family, at least.
    kinds = {
        "forged-report": [n for n in ALL_SCENARIOS if n.startswith("forged-report")],
        "lying-daemon": [n for n in ALL_SCENARIOS if n.startswith("lying-daemon")],
        "forged-ptb": [n for n in ALL_SCENARIOS if "ptb" in n],
        "cache-poison": [n for n in ALL_SCENARIOS if "poison" in n],
        "echo-forgery": [n for n in ALL_SCENARIOS if "echo" in n],
    }
    for family, members in kinds.items():
        assert members, f"no scenario covers the {family} family"


def test_unknown_scenario_is_rejected():
    with pytest.raises(ValueError, match="unknown attack scenario"):
        build_attack_plan("no-such-attack")


@pytest.mark.parametrize("name", ATTACKS)
def test_every_attack_scenario_fires_faults(name):
    plan = build_attack_plan(name)
    assert plan.attack_faults or plan.link_faults, (
        f"{name} registers no faults — it cannot be attacking anything"
    )


def test_scenarios_carry_descriptions():
    for name, scenario in ATTACK_SCENARIOS.items():
        assert scenario.description, f"{name} has no description"
