"""Property tests for the flow-scoped PMTU cache.

The poisoning defenses are stateful and order-sensitive, so they are
checked against arbitrary interleavings of learn / expire / invalidate
/ reconcile rather than hand-picked sequences.  The central invariant:
under ``per_flow_cache``, nothing one flow learns (or is tricked into
learning) can shadow what another flow sees.
"""

from hypothesis import given, settings, strategies as st

from repro.pmtud import HardeningPolicy
from repro.resilience import PmtuCache

DST = 9901
FLOW_A = (6, 101, 40001, DST, 9100)
FLOW_B = (6, 102, 41001, DST, 9101)

TRUSTS = st.sampled_from(["probe", "icmp", "report", "static"])
PMTUS = st.integers(min_value=68, max_value=9000)
SAFE_PMTUS = st.integers(min_value=576, max_value=9000)
DTS = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)

# One op: (kind, trust, pmtu, flow, dt).  Unused fields are ignored by
# the non-learn kinds, which keeps the shapes uniform and shrinkable.
OPS = st.lists(
    st.tuples(
        st.sampled_from(["learn", "invalidate-flow", "invalidate-dst",
                         "reconcile", "lookup"]),
        TRUSTS,
        PMTUS,
        st.sampled_from([FLOW_A, FLOW_B, None]),
        DTS,
    ),
    max_size=40,
)


def apply_ops(cache, ops):
    """Drive *cache* through *ops* with a monotonic clock; yields now."""
    now = 0.0
    for kind, trust, pmtu, flow, dt in ops:
        now += dt
        if kind == "learn":
            cache.learn(DST, pmtu, now, ttl=5.0, source="ptb"
                        if trust in ("icmp", "report") else "fpmtud",
                        flow=flow, trust=trust)
        elif kind == "invalidate-flow" and flow is not None:
            cache.invalidate(DST, flow=flow)
        elif kind == "invalidate-dst":
            cache.invalidate(DST)
        elif kind == "reconcile":
            cache.reconcile(DST, max(pmtu, 576), now)
        elif kind == "lookup":
            cache.lookup(DST, now, flow=flow)
        yield now


@given(ops=OPS)
@settings(max_examples=200, deadline=None)
def test_flow_entries_never_shadow_other_flows(ops):
    cache = PmtuCache(default_ttl=5.0, policy=HardeningPolicy.hardened())
    for now in apply_ops(cache, ops):
        for mine, theirs in ((FLOW_A, FLOW_B), (FLOW_B, FLOW_A)):
            entry = cache.peek(DST, now, flow=mine)
            if entry is not None:
                assert entry.flow in (mine, None), (
                    f"flow {mine} sees {theirs}'s entry: {entry}"
                )


@given(ops=OPS)
@settings(max_examples=200, deadline=None)
def test_unsolicited_learns_never_raise_the_visible_value(ops):
    cache = PmtuCache(default_ttl=5.0, policy=HardeningPolicy.hardened())
    now = 0.0
    for kind, trust, pmtu, flow, dt in ops:
        now += dt
        if kind == "learn" and trust in ("icmp", "report"):
            before = cache.peek(DST, now, flow=flow)
            cache.learn(DST, pmtu, now, ttl=5.0, source="ptb",
                        flow=flow, trust=trust)
            after = cache.peek(DST, now, flow=flow)
            if before is not None and after is not None:
                assert after.pmtu <= before.pmtu, (
                    f"unsolicited {trust} learn of {pmtu} raised the "
                    f"visible value {before.pmtu} -> {after.pmtu}"
                )
        elif kind == "learn":
            cache.learn(DST, pmtu, now, ttl=5.0, source="fpmtud",
                        flow=flow, trust=trust)
        elif kind == "invalidate-dst":
            cache.invalidate(DST)


@given(ops=OPS)
@settings(max_examples=200, deadline=None)
def test_unsolicited_learns_respect_the_plausibility_floor(ops):
    cache = PmtuCache(default_ttl=5.0, policy=HardeningPolicy.hardened())
    # Re-map solicited learns into the safe band so any sub-576 entry
    # could only have come from an unsolicited learn slipping through.
    for index, now in enumerate(apply_ops(cache, [
        (kind, trust, pmtu if trust in ("icmp", "report") else max(pmtu, 576),
         flow, dt)
        for kind, trust, pmtu, flow, dt in ops
    ])):
        for flow in (FLOW_A, FLOW_B, None):
            entry = cache.peek(DST, now, flow=flow)
            assert entry is None or entry.pmtu >= 576


@given(ops=OPS)
@settings(max_examples=150, deadline=None)
def test_lookup_accounting_is_conserved(ops):
    cache = PmtuCache(default_ttl=5.0, policy=HardeningPolicy.hardened())
    lookups = sum(1 for op in ops if op[0] == "lookup")
    for _now in apply_ops(cache, ops):
        pass
    assert cache.hits + cache.misses == lookups


@given(ops=OPS)
@settings(max_examples=150, deadline=None)
def test_expired_entries_are_never_returned(ops):
    cache = PmtuCache(default_ttl=5.0, policy=HardeningPolicy.hardened())
    now = 0.0
    for kind, trust, pmtu, flow, dt in ops:
        now += dt
        if kind == "learn":
            cache.learn(DST, pmtu, now, ttl=2.0, source="fpmtud",
                        flow=flow, trust="probe")
        entry = cache.lookup(DST, now, flow=flow)
        assert entry is None or entry.expires_at > now


def test_unhardened_cache_has_the_shadowing_bug_by_design():
    """The contrast case: without per_flow_cache one forged learn for
    flow B is exactly what flow A's next lookup returns."""
    cache = PmtuCache(default_ttl=5.0, policy=HardeningPolicy.unhardened())
    cache.learn(DST, 296, 0.0, source="ptb", flow=FLOW_B, trust="icmp")
    entry = cache.lookup(DST, 0.1, flow=FLOW_A)
    assert entry is not None and entry.pmtu == 296
