"""Detection story: absorbed attacks must still light up the obs layer.

The PR 5 alert engine watches the PMTU-cache miss rate; this PR adds
rules on the rejected-report and poison-rejection counters.  A
hardened gateway under attack keeps its datapath intact *and* alerts;
the benign corpus keeps every PMTUD rule quiet.
"""

from repro.obs.alerts import adversarial_alert_rules, default_alert_rules

from .conftest import differential

PMTUD_RULES = (
    "pmtu-cache-miss-spike",
    "pmtud-rejected-reports",
    "pmtu-cache-poison-attempts",
)


class TestRuleSet:
    def test_adversarial_rules_extend_the_defaults(self):
        base = {rule.name for rule in default_alert_rules("pxgw")}
        extended = {rule.name for rule in adversarial_alert_rules()}
        assert base <= extended
        assert "pmtud-rejected-reports" in extended
        assert "pmtu-cache-poison-attempts" in extended

    def test_new_rules_are_rate_rules_on_the_new_counters(self):
        by_name = {rule.name: rule for rule in adversarial_alert_rules()}
        rejected = by_name["pmtud-rejected-reports"]
        assert rejected.kind == "rate"
        assert "px_pmtud_rejected_reports_total" in rejected.series
        poison = by_name["pmtu-cache-poison-attempts"]
        assert poison.kind == "rate"
        assert "px_pmtu_cache_poison_rejected_total" in poison.series


class TestAttackVisibility:
    def test_report_flood_fires_the_pmtud_alerts_while_defended(self):
        hardened, _ = differential("report-flood-detect")
        assert not hardened.compromised
        fired = hardened.alerts["fired"]
        assert "pmtu-cache-miss-spike" in fired, (
            f"the PR 5 miss-spike rule missed the flood; fired={fired}"
        )
        assert "pmtud-rejected-reports" in fired

    def test_ptb_flood_is_visible_through_poison_rejections(self):
        hardened, _ = differential("ptb-flood-ratelimit")
        assert not hardened.compromised
        # The listeners rejected the flood; the counters the alert rules
        # watch must show it even if the short window kept rates low.
        rejected = hardened.notes["ptb_victim"]["rejected"]
        assert rejected >= 50

    def test_alert_states_cover_every_rule(self):
        hardened, _ = differential("report-flood-detect")
        for rule in PMTUD_RULES:
            assert rule in hardened.alerts["states"]


class TestBenignQuiet:
    def test_benign_corpus_keeps_pmtud_rules_silent(self):
        hardened, unhardened = differential("benign-control")
        for result in (hardened, unhardened):
            for rule in PMTUD_RULES:
                assert rule not in result.alerts["fired"], (
                    f"{rule} fired on benign traffic"
                )

    def test_benign_rejection_counters_stay_zero(self):
        hardened, _ = differential("benign-control")
        assert sum(hardened.notes["prober_rejections"].values()) == 0
        assert hardened.notes["ptb_victim"]["rejected"] == 0
