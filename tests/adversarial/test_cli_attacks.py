"""The `repro attacks` CLI verb."""

import json

from repro.cli import main


def test_single_scenario_table(capsys):
    rc = main(["attacks", "--scenario", "forged-report-raise"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "forged-report-raise" in out and "defended" in out


def test_json_output_is_parseable(capsys):
    rc = main(["attacks", "--scenario", "benign-control", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    entry = payload[0]
    assert entry["scenario"] == "benign-control"
    assert entry["hardened"]["compromised"] is False
    assert entry["unhardened"]["compromised"] is False
    assert entry["hardened"]["digest"]


def test_unknown_scenario_fails_cleanly(capsys):
    rc = main(["attacks", "--scenario", "no-such-attack"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "unknown scenario" in err
