"""Teeth tests: prove the oracle would catch a silently-broken defense.

An adversarial suite whose oracle never fires on a real failure is
decoration.  Here the defenses are deliberately switched off and the
``check_pmtu_sanity`` oracle must flag the resulting mis-sized
estimates — the same check that stays silent across the hardened
corpus in test_differential.py.
"""

from repro.chaos import run_attack_scenario
from repro.chaos.oracle import InvariantOracle


class TestOracleUnit:
    def test_flags_estimates_outside_the_plausible_band(self):
        oracle = InvariantOracle()
        oracle.check_pmtu_sanity([8996], true_min_mtu=1280, link_mtu=1500)
        assert any("pmtu-sanity" in violation for violation in
                   oracle.violations)

    def test_flags_sub_floor_estimates(self):
        oracle = InvariantOracle()
        oracle.check_pmtu_sanity([296], true_min_mtu=1280, link_mtu=1500)
        assert oracle.violations

    def test_flags_final_estimate_above_true_minimum(self):
        # 1496 is inside [576, 1500] but above the 1280 bottleneck:
        # acting on it blackholes full-sized packets.
        oracle = InvariantOracle()
        oracle.check_pmtu_sanity([1276, 1496], true_min_mtu=1280,
                                 link_mtu=1500)
        assert any("true path minimum" in violation for violation in
                   oracle.violations)

    def test_honest_estimates_pass(self):
        oracle = InvariantOracle()
        oracle.check_pmtu_sanity([1276], true_min_mtu=1280, link_mtu=1500)
        assert oracle.violations == []

    def test_empty_estimates_pass(self):
        oracle = InvariantOracle()
        oracle.check_pmtu_sanity([], true_min_mtu=1280, link_mtu=1500)
        assert oracle.violations == []


class TestDefensesOffOracleOn:
    def test_forged_report_inflation_is_flagged(self):
        # Nonce validation (and every other defense) off: the forged
        # 1496 B report is accepted, and the oracle — not the defense —
        # must be what catches the mis-sizing.
        result = run_attack_scenario("forged-report-raise", seed=7,
                                     hardened=False)
        assert result.compromised
        assert result.notes["sanity_violations"], (
            "the unhardened stack accepted a forged estimate but "
            "check_pmtu_sanity stayed silent — the oracle has no teeth"
        )

    def test_absurd_report_is_flagged(self):
        result = run_attack_scenario("forged-report-absurd", seed=7,
                                     hardened=False)
        assert result.compromised
        assert result.notes["sanity_violations"]

    def test_classical_collapse_is_flagged(self):
        result = run_attack_scenario("classical-ptb-collapse", seed=7,
                                     hardened=False)
        assert result.compromised
        assert result.notes["sanity_violations"]
