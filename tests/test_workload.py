"""Tests for workload generators and the parallel-connection CPU model."""

import random

import pytest

from repro.cpu import XEON_5512U
from repro.packet import Packet
from repro.net import Topology
from repro.workload import (
    IperfResult,
    ParallelDownloadModel,
    SessionConfig,
    TcpStreamSource,
    UdpStreamSource,
    elephant_mice_split,
    interleave,
    lognormal_flow_sizes,
    make_tcp_sources,
    make_udp_sources,
    pareto_flow_sizes,
    poisson_arrivals,
    run_tcp_flow,
)


class TestStreams:
    def test_tcp_source_is_in_order(self):
        source = TcpStreamSource("1.1.1.1", "2.2.2.2", 1000, 80, payload_size=1448)
        packets = [source.next_packet() for _ in range(5)]
        assert [p.tcp.seq for p in packets] == [0, 1448, 2896, 4344, 5792]
        assert all(len(p.payload) == 1448 for p in packets)

    def test_udp_source_consecutive_ids(self):
        source = UdpStreamSource("1.1.1.1", "2.2.2.2", 1000, 80, payload_size=1200)
        packets = [source.next_packet() for _ in range(4)]
        ids = [p.ip.identification for p in packets]
        assert ids == [ids[0], ids[0] + 1, ids[0] + 2, ids[0] + 3]

    def test_interleave_emits_exact_count(self):
        sources = make_tcp_sources(10, 1448)
        stream = list(interleave(sources, 500, random.Random(1), mean_run=8))
        assert len(stream) == 500
        assert all(isinstance(p, Packet) for p, _tag in stream)

    def test_interleave_deterministic_under_seed(self):
        def run(seed):
            sources = make_tcp_sources(5, 1448)
            return [p.tcp.seq for p, _ in interleave(sources, 100, random.Random(seed))]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_mean_run_controls_contiguity(self):
        def mean_run_length(mean_run):
            sources = make_tcp_sources(8, 1448)
            stream = [p.flow_key() for p, _ in
                      interleave(sources, 4000, random.Random(2), mean_run=mean_run)]
            runs, current = [], 1
            for previous, packet in zip(stream, stream[1:]):
                if packet == previous:
                    current += 1
                else:
                    runs.append(current)
                    current = 1
            return sum(runs) / len(runs)

        assert mean_run_length(16) > 3 * mean_run_length(1)

    def test_tags_follow_sources(self):
        sources = make_tcp_sources(3, 1448, tag="down") + make_tcp_sources(
            3, 8948, tag="up", base_port=9000)
        stream = list(interleave(sources, 200, random.Random(3)))
        tags = {tag for _p, tag in stream}
        assert tags == {"down", "up"}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TcpStreamSource("1.1.1.1", "2.2.2.2", 1, 2, payload_size=0)
        with pytest.raises(ValueError):
            list(interleave([], 10, random.Random(0)))
        sources = make_tcp_sources(1, 100)
        with pytest.raises(ValueError):
            list(interleave(sources, 10, random.Random(0), mean_run=0.5))


class TestParallelDownloadModel:
    def model(self):
        return ParallelDownloadModel(XEON_5512U, line_rate_bps=10e9)

    def test_single_session_usage_near_paper(self):
        model = self.model()
        jumbo = model.cpu_usage(1, SessionConfig.single_jumbo())
        parallel = model.cpu_usage(1, SessionConfig.axel_parallel())
        # Paper: 20.20 % vs 19.52 % — both near 20 %, nearly equal.
        assert 0.15 < jumbo < 0.25
        assert 0.15 < parallel < 0.25
        assert abs(jumbo - parallel) < 0.05

    def test_hundred_sessions_parallel_saturates(self):
        model = self.model()
        assert model.cpu_usage(100, SessionConfig.axel_parallel()) == 1.0
        assert model.cpu_usage(100, SessionConfig.single_jumbo()) < 0.45

    def test_ratio_at_hundred_sessions_matches_paper(self):
        # Paper: 2.88x more CPU for parallel connections at 100 sessions.
        ratio = self.model().cpu_ratio(100)
        assert 2.4 < ratio < 3.4

    def test_usage_monotonic_in_sessions(self):
        model = self.model()
        for config in (SessionConfig.single_jumbo(), SessionConfig.axel_parallel()):
            usages = [model.cpu_usage(s, config) for s in (1, 10, 100)]
            assert usages == sorted(usages)

    def test_more_acks_for_small_mss(self):
        model = self.model()
        small = model.base_cycles_per_second(SessionConfig(connections=1, mss=1448))
        large = model.base_cycles_per_second(SessionConfig(connections=1, mss=8948))
        assert small > large

    def test_invalid_sessions(self):
        with pytest.raises(ValueError):
            self.model().cpu_usage(0, SessionConfig.single_jumbo())


class TestDistributions:
    def test_pareto_heavy_tail(self):
        sizes = pareto_flow_sizes(5000, random.Random(1))
        elephants, mice = elephant_mice_split(sizes)
        assert mice > elephants  # most flows are small
        assert max(sizes) > 100 * min(sizes)  # but the tail is long

    def test_lognormal_positive(self):
        sizes = lognormal_flow_sizes(100, random.Random(2))
        assert all(size >= 1 for size in sizes)

    def test_poisson_arrivals_increasing(self):
        times = poisson_arrivals(100, random.Random(3), rate_per_sec=1000.0)
        assert all(b > a for a, b in zip(times, times[1:]))
        assert times[-1] == pytest.approx(0.1, rel=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            pareto_flow_sizes(1, random.Random(0), alpha=0)
        with pytest.raises(ValueError):
            poisson_arrivals(1, random.Random(0), rate_per_sec=0)


class TestIperf:
    def test_run_tcp_flow_measures_goodput(self):
        topo = Topology()
        client = topo.add_host("client")
        server = topo.add_host("server")
        router = topo.add_router("router")
        topo.link(client, router, bandwidth_bps=1e9)
        topo.link(router, server, bandwidth_bps=1e9)
        topo.build_routes()
        result = run_tcp_flow(topo, client, server, duration=1.0)
        assert isinstance(result, IperfResult)
        assert result.throughput_bps > 50e6
        assert result.client_mss == 1460
