"""Tests for routing tables, routers (fragmentation/ICMP), and hosts."""

import pytest

from repro.net import Host, Router, RoutingTable, Topology
from repro.packet import (
    ICMPMessage,
    ICMPType,
    build_icmp,
    build_udp,
    str_to_ip,
)
from repro.sim import Simulator


class TestRoutingTable:
    def make_iface(self, tag):
        sim = Simulator()
        host = Host(sim, f"h{tag}")
        return host.add_interface(tag)

    def test_longest_prefix_wins(self):
        table = RoutingTable()
        coarse = self.make_iface(1)
        fine = self.make_iface(2)
        table.add("10.0.0.0/8", coarse)
        table.add("10.1.0.0/16", fine)
        assert table.lookup(str_to_ip("10.1.2.3")).interface is fine
        assert table.lookup(str_to_ip("10.2.2.3")).interface is coarse

    def test_default_route(self):
        table = RoutingTable()
        default = self.make_iface(1)
        table.add_default(default)
        assert table.lookup(str_to_ip("8.8.8.8")).interface is default

    def test_no_route_returns_none(self):
        table = RoutingTable()
        assert table.lookup(str_to_ip("1.2.3.4")) is None

    def test_remove_prefix(self):
        table = RoutingTable()
        iface = self.make_iface(1)
        table.add("10.0.0.0/8", iface)
        assert table.remove_prefix("10.0.0.0/8") == 1
        assert len(table) == 0


def two_host_line(mtu_left=1500, mtu_right=1500, **router_kwargs):
    """client -- router -- server, with per-segment MTUs."""
    topo = Topology()
    client = topo.add_host("client")
    server = topo.add_host("server")
    router = topo.add_router("router", **router_kwargs)
    topo.link(client, router, mtu=mtu_left)
    topo.link(router, server, mtu=mtu_right)
    topo.build_routes()
    return topo, client, server, router


class TestRouterForwarding:
    def test_forwards_between_hosts(self):
        topo, client, server, router = two_host_line()
        received = []
        server.on_udp(9, lambda packet, host: received.append(packet))
        client.send_udp(server.ip, 1000, 9, b"hello")
        topo.run()
        assert len(received) == 1
        assert received[0].payload == b"hello"
        assert router.forwarded == 1

    def test_ttl_decrement(self):
        topo, client, server, _router = two_host_line()
        received = []
        server.on_udp(9, lambda packet, host: received.append(packet))
        client.send_udp(server.ip, 1000, 9, b"x")
        topo.run()
        assert received[0].ip.ttl == 63

    def test_ttl_exhaustion_drops(self):
        topo, client, server, router = two_host_line()
        packet = build_udp(client.ip, server.ip, 1, 9, payload=b"x", ttl=1)
        client.send(packet)
        topo.run()
        assert router.dropped == 1

    def test_fragments_on_smaller_egress_mtu(self):
        topo, client, server, _router = two_host_line(mtu_left=9000, mtu_right=1500)
        received = []
        server.on_udp(9, lambda packet, host: received.append(packet))
        client.send_udp(server.ip, 1000, 9, b"z" * 8000)
        topo.run()
        # Host reassembles; payload intact.
        assert received[0].payload == b"z" * 8000

    def test_df_packet_gets_icmp_frag_needed(self):
        topo, client, server, _router = two_host_line(mtu_left=9000, mtu_right=1500)
        errors = []
        client.on_icmp(lambda packet, message: errors.append(message))
        client.send_udp(server.ip, 1000, 9, b"z" * 8000, dont_fragment=True)
        topo.run()
        assert len(errors) == 1
        assert errors[0].is_frag_needed
        assert errors[0].next_hop_mtu == 1500

    def test_blackhole_router_suppresses_icmp(self):
        topo, client, server, router = two_host_line(
            mtu_left=9000, mtu_right=1500, icmp_blackhole=True
        )
        errors = []
        client.on_icmp(lambda packet, message: errors.append(message))
        client.send_udp(server.ip, 1000, 9, b"z" * 8000, dont_fragment=True)
        topo.run()
        assert errors == []  # silent drop: the PMTUD blackhole
        assert router.dropped == 1

    def test_fragment_filtering_router(self):
        topo, client, server, router = two_host_line(
            mtu_left=9000, mtu_right=9000, filter_fragments=True
        )
        received = []
        server.on_udp(9, lambda packet, host: received.append(packet))
        # Pre-fragmented traffic (fragments arrive at the router).
        from repro.packet import fragment_packet

        packet = build_udp(client.ip, server.ip, 1, 9, payload=b"q" * 4000)
        for fragment in fragment_packet(packet, 1500):
            client.send(fragment)
        topo.run()
        assert received == []
        assert router.dropped == len(fragment_packet(packet, 1500))

    def test_router_echo_reply(self):
        topo, client, _server, router = two_host_line()
        replies = []
        client.on_icmp(lambda packet, message: replies.append(message))
        request = build_icmp(client.ip, router.interfaces[0].ip, ICMPMessage.echo_request(1, 1))
        client.send(request)
        topo.run()
        assert len(replies) == 1
        assert replies[0].icmp_type == ICMPType.ECHO_REPLY


class TestHost:
    def test_udp_demux_by_port(self):
        topo, client, server, _router = two_host_line()
        on_9, on_10 = [], []
        server.on_udp(9, lambda packet, host: on_9.append(packet))
        server.on_udp(10, lambda packet, host: on_10.append(packet))
        client.send_udp(server.ip, 1, 10, b"ten")
        client.send_udp(server.ip, 1, 9, b"nine")
        topo.run()
        assert [p.payload for p in on_9] == [b"nine"]
        assert [p.payload for p in on_10] == [b"ten"]

    def test_unclaimed_packets_recorded(self):
        topo, client, server, _router = two_host_line()
        client.send_udp(server.ip, 1, 12345, b"nobody")
        topo.run()
        assert len(server.unclaimed) == 1

    def test_host_without_reassembly_drops_fragments(self):
        topo = Topology()
        client = topo.add_host("client")
        server = topo.add_host("server", reassemble=False)
        router = topo.add_router("router")
        topo.link(client, router, mtu=9000)
        topo.link(router, server, mtu=1500)
        topo.build_routes()
        received = []
        server.on_udp(9, lambda packet, host: received.append(packet))
        client.send_udp(server.ip, 1, 9, b"f" * 5000)
        topo.run()
        assert received == []

    def test_host_echo_reply(self):
        topo, client, server, _router = two_host_line()
        replies = []
        client.on_icmp(lambda packet, message: replies.append(message))
        client.send(build_icmp(client.ip, server.ip, ICMPMessage.echo_request(5, 1, b"data")))
        topo.run()
        assert len(replies) == 1
        assert replies[0].payload == b"data"


class TestTopology:
    def test_multi_hop_routing(self):
        topo = Topology()
        hosts = [topo.add_host(f"h{i}") for i in range(2)]
        routers = [topo.add_router(f"r{i}") for i in range(3)]
        topo.link(hosts[0], routers[0])
        topo.link(routers[0], routers[1])
        topo.link(routers[1], routers[2])
        topo.link(routers[2], hosts[1])
        topo.build_routes()
        received = []
        hosts[1].on_udp(9, lambda packet, host: received.append(packet))
        hosts[0].send_udp(hosts[1].ip, 1, 9, b"far")
        topo.run()
        assert len(received) == 1
        assert received[0].ip.ttl == 64 - 3

    def test_duplicate_node_name_rejected(self):
        topo = Topology()
        topo.add_host("x")
        with pytest.raises(ValueError):
            topo.add_host("x")

    def test_star_topology_all_pairs_reachable(self):
        topo = Topology()
        center = topo.add_router("center")
        leaves = [topo.add_host(f"leaf{i}") for i in range(4)]
        for leaf in leaves:
            topo.link(leaf, center)
        topo.build_routes()
        hits = []
        for index, leaf in enumerate(leaves):
            leaf.on_udp(9, lambda packet, host, i=index: hits.append(i))
        for src in leaves:
            for dst_index, dst in enumerate(leaves):
                if src is not dst:
                    src.send_udp(dst.ip, 1, 9, b"m")
        topo.run()
        assert len(hits) == 12  # 4 * 3 pairs

    def test_explicit_addresses(self):
        topo = Topology()
        a = topo.add_host("a")
        b = topo.add_host("b")
        topo.link(a, b, ip_a="192.168.0.1", ip_b="192.168.0.2")
        assert a.ip == str_to_ip("192.168.0.1")
        assert b.ip == str_to_ip("192.168.0.2")
