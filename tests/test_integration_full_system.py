"""Full-system integration: everything at once on one simulated internet.

Two b-networks with live iMTU exchange, a legacy host, and concurrent
TCP (both merge and federated paths), UDP caravans, and an F-PMTUD
probe — the closest thing to the paper's Figure 2 deployment running
end to end.
"""

import pytest

from repro.core import GatewayConfig, PXGateway, decode_caravan, is_caravan
from repro.net import Topology
from repro.pmtud import FPmtudDaemon, FPmtudProber
from repro.sim import Netem
from repro.tcpstack import TCPConnection, TCPListener
from repro.workload import SealedDatagramCodec


@pytest.fixture
def world():
    """Figure-2-style deployment:

    host1 - gw1 ==(jumbo peering)== gw2 - host2
                \\- core router - legacy host
    """
    topo = Topology(seed=99)
    host1 = topo.add_host("host1")
    host2 = topo.add_host("host2")
    legacy = topo.add_host("legacy")
    core = topo.add_router("core")
    gw1 = PXGateway(topo.sim, "gw1",
                    config=GatewayConfig(elephant_threshold_packets=2))
    gw2 = PXGateway(topo.sim, "gw2",
                    config=GatewayConfig(elephant_threshold_packets=2))
    topo.add_node(gw1)
    topo.add_node(gw2)

    topo.link(host1, gw1, mtu=9000, bandwidth_bps=10e9, delay=50e-6)
    topo.link(gw1, gw2, mtu=9000, bandwidth_bps=10e9, delay=2e-3)
    topo.link(gw2, host2, mtu=9000, bandwidth_bps=10e9, delay=50e-6)
    topo.link(gw1, core, mtu=1500, bandwidth_bps=10e9, delay=1e-3,
              netem=Netem(delay=2e-3, loss=1e-5))
    topo.link(core, legacy, mtu=1500, bandwidth_bps=10e9, delay=1e-3)
    topo.build_routes()
    gw1.mark_internal(gw1.interfaces[0])
    gw2.mark_internal(gw2.interfaces[1])
    gw1.enable_imtu_exchange(interval=0.05, hold_time=0.2)
    gw2.enable_imtu_exchange(interval=0.05, hold_time=0.2)
    topo.run(until=0.1)  # let the exchange converge
    return topo, host1, host2, legacy, gw1, gw2


def test_everything_at_once(world):
    topo, host1, host2, legacy, gw1, gw2 = world

    # 1. TCP download from the legacy Internet into b-network 1.
    legacy_listener = TCPListener(legacy, 80, mss=1460)
    download = TCPConnection(host1, 40000, legacy.ip, 80, mss=8960)
    download.connect()

    # 2. Federated TCP between the two b-networks (no translation).
    b2b_listener = TCPListener(host2, 9100, mss=8960)
    b2b = TCPConnection(host1, 40001, host2.ip, 9100, mss=8960)
    b2b.connect()

    # 3. A sealed UDP stream from legacy into b-network 1 (caravans).
    sender_codec = SealedDatagramCodec(b"integration-key")
    receiver_codec = SealedDatagramCodec(b"integration-key")
    media = []

    def on_media(packet, host):
        for datagram in decode_caravan(packet):
            opened = receiver_codec.open(datagram.payload)
            if opened is not None:
                media.append(opened)

    host1.on_udp(4433, on_media)

    # 4. F-PMTUD from host1 toward the legacy host.
    FPmtudDaemon(legacy)
    prober = FPmtudProber(host1)
    pmtu_results = []
    prober.probe(legacy.ip, 9000, pmtu_results.append)

    topo.run(until=1.0)
    legacy_listener.connections[0].send_bulk(1_500_000)
    b2b.send_bulk(1_500_000)
    for index in range(30):
        legacy.send_udp(host1.ip, 4433, 4433, sender_codec.seal(bytes([index]) * 1000))
    topo.run(until=12.0)

    # TCP download completed through the merge path.
    assert download.bytes_delivered == 1_500_000
    assert gw1.stats.merged_packets > 0
    # Federated connection ran untranslated jumbos.
    assert b2b_listener.connections[0].bytes_delivered == 1_500_000
    assert gw1.untranslated > 0
    # All sealed datagrams arrived intact (caravan path).
    assert len(media) == 30
    assert receiver_codec.rejected == 0
    # F-PMTUD resolved the legacy path's 1500 B bottleneck in one try.
    assert len(pmtu_results) == 1
    assert 1492 <= pmtu_results[0].pmtu <= 1500


def test_peer_outage_falls_back_to_translation(world):
    topo, host1, host2, legacy, gw1, gw2 = world
    assert gw1.neighbor_imtu(gw1.interfaces[1]) == 9000
    # gw2 is decommissioned: its speaker stops announcing.
    gw2._imtu_speaker.stop()
    topo.run(until=1.0)
    assert gw1.neighbor_imtu(gw1.interfaces[1]) is None
    # Traffic toward b-network 2 now goes through the split engine
    # (safe even though the peer is gone from the control plane).
    before = gw1.stats.split_segments
    listener = TCPListener(host2, 9200, mss=8960)
    conn = TCPConnection(host1, 40002, host2.ip, 9200, mss=8960)
    conn.connect()
    topo.run(until=1.5)
    conn.send_bulk(500_000)
    topo.run(until=4.0)
    assert listener.connections[0].bytes_delivered == 500_000
    assert gw1.stats.split_segments > before
