"""Tests for on-NIC memory pressure under header-only DMA (§5.1 caveat)."""

import random

import pytest

from repro.core import Bound, GatewayConfig, GatewayDatapath, GatewayWorker
from repro.cpu import XEON_6554S
from repro.packet import build_tcp
from repro.workload import interleave, make_tcp_sources


def feed_flows(worker, flows, packets_per_flow=3, payload=1448):
    sources = make_tcp_sources(flows, payload)
    for _ in range(packets_per_flow):
        for source in sources:
            worker.process(source.next_packet(), Bound.INBOUND)


class TestNicMemoryPressure:
    def test_within_capacity_no_fallbacks(self):
        worker = GatewayWorker(GatewayConfig(header_only_dma=True,
                                             hairpin_small_flows=False))
        feed_flows(worker, flows=50)  # ~50 * 4.3 kB resident << 2 MB
        assert worker.stats.hdo_fallbacks == 0

    def test_capacity_exhaustion_falls_back(self):
        config = GatewayConfig(header_only_dma=True, hairpin_small_flows=False,
                               nic_memory_bytes=64 * 1024)
        worker = GatewayWorker(config)
        feed_flows(worker, flows=200)  # resident far beyond 64 kB
        assert worker.stats.hdo_fallbacks > 0

    def test_fallback_charges_full_dma_memory(self):
        tiny = GatewayConfig(header_only_dma=True, hairpin_small_flows=False,
                             nic_memory_bytes=16 * 1024)
        roomy = GatewayConfig(header_only_dma=True, hairpin_small_flows=False)
        pressured = GatewayWorker(tiny)
        unpressured = GatewayWorker(roomy)
        feed_flows(pressured, flows=100)
        feed_flows(unpressured, flows=100)
        assert pressured.account.mem_bytes > 3 * unpressured.account.mem_bytes

    def test_full_dma_mode_never_counts_fallbacks(self):
        worker = GatewayWorker(GatewayConfig(hairpin_small_flows=False,
                                             nic_memory_bytes=1024))
        feed_flows(worker, flows=100)
        assert worker.stats.hdo_fallbacks == 0

    def test_hdo_benefit_erodes_with_flow_count(self):
        """The paper calls header-only DMA experimental 'due to limited
        NIC store': once merge-context residency exceeds the per-worker
        NIC memory share, packets fall back to full DMA and the
        throughput benefit sinks toward the full-DMA level."""

        def tput(flows, hdo, nic_memory):
            config = GatewayConfig(header_only_dma=hdo, hairpin_small_flows=False,
                                   nic_memory_bytes=nic_memory)
            datapath = GatewayDatapath(config)
            sources = make_tcp_sources(flows, 1448, tag=Bound.INBOUND)
            rng = random.Random(3)
            datapath.process_stream(interleave(sources, 10_000, rng, 24.0),
                                    final_flush=False)
            datapath.reset_measurement()
            datapath.process_stream(interleave(sources, 25_000, rng, 24.0),
                                    final_flush=False)
            return (datapath.sustainable_throughput_bps(XEON_6554S),
                    datapath.combined_stats().hdo_fallbacks)

        # A tight per-worker NIC share (256 kB): 400 flows fit (~208 kB
        # resident per worker), 4000 flows (~470 kB) overflow it.
        nic_memory = 256 * 1024
        few_tput, few_fallbacks = tput(400, True, nic_memory)
        many_tput, many_fallbacks = tput(4000, True, nic_memory)
        base_tput, _ = tput(400, False, nic_memory)
        assert few_fallbacks < many_fallbacks / 10  # rarely vs constantly
        assert many_fallbacks > 1000
        few_gain = few_tput / base_tput
        many_gain = many_tput / base_tput
        assert few_gain > 1.08  # HDO clearly helps while payloads fit
        assert many_gain < few_gain - 0.03  # and erodes under pressure
