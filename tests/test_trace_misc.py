"""Tests for packet tracing and miscellaneous host/node APIs."""

import pytest

from repro.net import Host, Topology
from repro.packet import build_udp
from repro.sim import PacketTrace, Simulator


class TestPacketTrace:
    def packet(self):
        return build_udp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"t")

    def test_record_and_count(self):
        trace = PacketTrace()
        trace.record(0.0, "router", "rx", self.packet())
        trace.record(0.1, "router", "tx", self.packet())
        trace.record(0.2, "host", "rx", self.packet())
        assert trace.count() == 3
        assert trace.count(event="rx") == 2
        assert trace.count(point="router") == 2
        assert trace.count(event="tx", point="router") == 1

    def test_matching_predicate(self):
        trace = PacketTrace()
        trace.record(0.0, "a", "rx", self.packet())
        trace.record(5.0, "a", "rx", self.packet())
        late = trace.matching(lambda entry: entry.time > 1.0)
        assert len(late) == 1

    def test_disabled_trace_records_nothing(self):
        trace = PacketTrace(enabled=False)
        trace.record(0.0, "a", "rx", self.packet())
        assert trace.count() == 0

    def test_capacity_limit(self):
        trace = PacketTrace(capacity=2)
        for _ in range(5):
            trace.record(0.0, "a", "rx", self.packet())
        assert trace.count() == 2

    def test_clear(self):
        trace = PacketTrace()
        trace.record(0.0, "a", "rx", self.packet())
        trace.clear()
        assert trace.count() == 0

    def test_router_records_to_trace(self):
        trace = PacketTrace()
        topo = Topology()
        client = topo.add_host("client")
        server = topo.add_host("server")
        router = topo.add_router("router")
        router.trace = trace
        topo.link(client, router)
        topo.link(router, server)
        topo.build_routes()
        server.on_udp(9, lambda packet, host: None)
        client.send_udp(server.ip, 1, 9, b"x")
        topo.run()
        assert trace.count(event="rx", point="router") == 1
        assert trace.count(event="tx", point="router") == 1


class TestHostApis:
    def test_close_udp_stops_delivery(self):
        topo = Topology()
        a = topo.add_host("a")
        b = topo.add_host("b")
        topo.link(a, b)
        topo.build_routes()
        hits = []
        b.on_udp(9, lambda packet, host: hits.append(packet))
        a.send_udp(b.ip, 1, 9, b"one")
        topo.run()
        b.close_udp(9)
        a.send_udp(b.ip, 1, 9, b"two")
        topo.run()
        assert len(hits) == 1
        assert len(b.unclaimed) == 1

    def test_close_tcp_listener_entry(self):
        topo = Topology()
        a = topo.add_host("a")
        b = topo.add_host("b")
        topo.link(a, b)
        topo.build_routes()
        seen = []
        b.on_tcp(80, a.ip, 1234, seen.append)
        b.close_tcp(80, a.ip, 1234)
        from repro.packet import TCPFlags, build_tcp

        a.send(build_tcp(a.ip, b.ip, 1234, 80, flags=TCPFlags.ACK))
        topo.run()
        assert seen == []

    def test_host_without_interface_raises_on_ip(self):
        sim = Simulator()
        host = Host(sim, "lonely")
        with pytest.raises(RuntimeError):
            _ = host.ip

    def test_send_without_route_returns_false(self):
        sim = Simulator()
        host = Host(sim, "isolated")
        host.add_interface(42)
        packet = build_udp(42, 99, 1, 2)
        assert not host.send(packet)

    def test_interface_for_and_owns_address(self):
        sim = Simulator()
        host = Host(sim, "multi")
        host.add_interface(10)
        host.add_interface(20)
        assert host.interface_for(20).ip == 20
        assert host.owns_address(10)
        assert not host.owns_address(30)
