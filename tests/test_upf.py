"""Tests for the 5G UPF substrate: sessions, pipeline, GTP-U handling."""

import pytest

from repro.cpu import XEON_6554S
from repro.packet import (
    GTPU_PORT,
    GTPUHeader,
    Packet,
    build_tcp,
    build_udp,
    str_to_ip,
)
from repro.upf import Direction, FarAction, PDR, SessionManager, Upf

N3 = str_to_ip("10.100.0.1")
GNB = str_to_ip("10.100.0.2")
UE = str_to_ip("172.16.0.10")
DN = str_to_ip("93.184.216.34")


def make_upf(sessions=1, mbr=None):
    upf = Upf(n3_address=N3)
    for index in range(sessions):
        upf.sessions.create_session(
            seid=1000 + index,
            ue_ip=UE + index,
            uplink_teid=5000 + index,
            gnb_teid=6000 + index,
            gnb_ip=GNB,
            mbr_bps=mbr,
        )
    return upf


def gtpu_encapsulate(inner: Packet, teid: int, src=GNB, dst=N3) -> Packet:
    inner_bytes = inner.to_bytes()
    payload = GTPUHeader(teid=teid).pack(payload_len=len(inner_bytes)) + inner_bytes
    return build_udp(src, dst, GTPU_PORT, GTPU_PORT, payload=payload)


class TestSessionManager:
    def test_create_installs_fast_path(self):
        manager = SessionManager()
        session = manager.create_session(1, UE, 5000, 6000, GNB)
        assert manager.lookup_uplink(5000)[0] is session
        assert manager.lookup_downlink(UE)[0] is session

    def test_duplicate_seid_rejected(self):
        manager = SessionManager()
        manager.create_session(1, UE, 5000, 6000, GNB)
        with pytest.raises(ValueError):
            manager.create_session(1, UE + 1, 5001, 6001, GNB)

    def test_duplicate_teid_rejected(self):
        manager = SessionManager()
        manager.create_session(1, UE, 5000, 6000, GNB)
        with pytest.raises(ValueError):
            manager.create_session(2, UE + 1, 5000, 6001, GNB)

    def test_remove_clears_fast_path(self):
        manager = SessionManager()
        manager.create_session(1, UE, 5000, 6000, GNB)
        manager.remove_session(1)
        assert manager.lookup_uplink(5000) is None
        assert manager.lookup_downlink(UE) is None

    def test_pdr_validation(self):
        with pytest.raises(ValueError):
            PDR(pdr_id=1, direction=Direction.UPLINK, far_id=1)
        with pytest.raises(ValueError):
            PDR(pdr_id=1, direction=Direction.DOWNLINK, far_id=1)


class TestUplinkPath:
    def test_decap_and_forward(self):
        upf = make_upf()
        inner = build_udp(UE, DN, 4000, 80, payload=b"request")
        out = upf.process(gtpu_encapsulate(inner, teid=5000))
        assert len(out) == 1
        assert out[0].ip.src == UE
        assert out[0].ip.dst == DN
        assert out[0].payload == b"request"
        assert upf.stats.uplink_packets == 1

    def test_unknown_teid_dropped(self):
        upf = make_upf()
        inner = build_udp(UE, DN, 4000, 80, payload=b"x")
        out = upf.process(gtpu_encapsulate(inner, teid=9999))
        assert out == []
        assert upf.stats.dropped_no_match == 1

    def test_malformed_gtpu_dropped(self):
        upf = make_upf()
        bad = build_udp(GNB, N3, GTPU_PORT, GTPU_PORT, payload=b"\x00\x01")
        assert upf.process(bad) == []
        assert upf.stats.dropped_malformed == 1

    def test_tcp_inner_packet(self):
        upf = make_upf()
        inner = build_tcp(UE, DN, 4000, 443, payload=b"tls", seq=1)
        out = upf.process(gtpu_encapsulate(inner, teid=5000))
        assert out[0].is_tcp
        assert out[0].tcp.dst_port == 443


class TestDownlinkPath:
    def test_encap_toward_gnb(self):
        upf = make_upf()
        packet = build_udp(DN, UE, 80, 4000, payload=b"response")
        out = upf.process(packet)
        assert len(out) == 1
        egress = out[0]
        assert egress.ip.src == N3 and egress.ip.dst == GNB
        assert egress.udp.dst_port == GTPU_PORT
        gtpu = GTPUHeader.unpack(egress.payload)
        assert gtpu.teid == 6000
        inner = Packet.from_bytes(egress.payload[8:], verify=False)
        assert inner.ip.dst == UE
        assert inner.payload == b"response"

    def test_unknown_ue_dropped(self):
        upf = make_upf()
        packet = build_udp(DN, UE + 50, 80, 4000, payload=b"?")
        assert upf.process(packet) == []
        assert upf.stats.dropped_no_match == 1

    def test_roundtrip_uplink_then_downlink(self):
        upf = make_upf()
        request = build_udp(UE, DN, 4000, 80, payload=b"req")
        [decapped] = upf.process(gtpu_encapsulate(request, teid=5000))
        response = build_udp(DN, UE, 80, 4000, payload=b"resp")
        [encapped] = upf.process(response)
        assert GTPUHeader.unpack(encapped.payload).teid == 6000


class TestUpfPerformance:
    def downlink_account(self, payload_len, packets=2000, sessions=100):
        upf = make_upf(sessions=sessions)
        for index in range(packets):
            packet = build_udp(DN, UE + (index % sessions), 80, 4000,
                               payload=b"\0" * payload_len)
            upf.process(packet)
        return upf.account

    def test_throughput_scales_with_mtu(self):
        small = self.downlink_account(1472)
        large = self.downlink_account(8972)
        t_small = small.sustainable_goodput_bps(XEON_6554S, cores=1)
        t_large = large.sustainable_goodput_bps(XEON_6554S, cores=1)
        # The paper's headline: ~5.6x speedup from 1500 -> 9000 MTU.
        assert 4.5 < t_large / t_small < 6.5

    def test_single_core_9k_throughput_near_paper(self):
        account = self.downlink_account(8972)
        tput = account.sustainable_goodput_bps(XEON_6554S, cores=1)
        # Paper: 208 Gbps on one core at 9 KB MTU (goodput slightly lower).
        assert 150e9 < tput < 260e9

    def test_cycles_dominated_by_lookups_not_bytes(self):
        account = self.downlink_account(8972)
        assert account.breakdown["pdr"] > account.breakdown["dma"]
