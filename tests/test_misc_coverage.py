"""Coverage for remaining corners: listeners, topology accessors, engine
counters, gateway tracing."""

import pytest

from repro.core import GatewayConfig, PXGateway
from repro.net import Topology
from repro.packet import TCPFlags, build_tcp
from repro.sim import PacketTrace, Simulator
from repro.tcpstack import TCPConnection, TCPListener


class TestListenerConcurrency:
    def topo(self):
        topo = Topology()
        a = topo.add_host("a")
        b = topo.add_host("b")
        server = topo.add_host("server")
        router = topo.add_router("router")
        for host in (a, b, server):
            topo.link(host, router)
        topo.build_routes()
        return topo, a, b, server

    def test_two_clients_one_listener(self):
        topo, a, b, server = self.topo()
        listener = TCPListener(server, 80)
        conn_a = TCPConnection(a, 40000, server.ip, 80)
        conn_b = TCPConnection(b, 40000, server.ip, 80)
        conn_a.connect()
        conn_b.connect()
        topo.run(until=1.0)
        assert len(listener.connections) == 2
        conn_a.send_bulk(10_000)
        conn_b.send_bulk(20_000)
        topo.run(until=3.0)
        delivered = sorted(c.bytes_delivered for c in listener.connections)
        assert delivered == [10_000, 20_000]

    def test_retransmitted_syn_does_not_duplicate_connection(self):
        topo, a, _b, server = self.topo()
        listener = TCPListener(server, 80)
        conn = TCPConnection(a, 40000, server.ip, 80)
        conn.connect()
        topo.run(until=0.5)
        # A stale duplicate SYN arrives after establishment.
        dup_syn = build_tcp(a.ip, server.ip, 40000, 80, flags=TCPFlags.SYN,
                            mss=1460, seq=0)
        a.send(dup_syn)
        topo.run(until=1.0)
        assert len(listener.connections) == 1

    def test_on_accept_callback(self):
        topo, a, _b, server = self.topo()
        accepted = []
        TCPListener(server, 80, on_accept=accepted.append)
        conn = TCPConnection(a, 40000, server.ip, 80)
        conn.connect()
        topo.run(until=1.0)
        assert len(accepted) == 1
        assert accepted[0].peer_port == 40000


class TestTopologyAccessors:
    def test_edge_lookup(self):
        topo = Topology()
        a = topo.add_host("a")
        b = topo.add_host("b")
        forward, backward = topo.link(a, b)
        iface_a, iface_b, link_ab, link_ba = topo.edge(a, b)
        assert link_ab is forward and link_ba is backward
        assert iface_a.node is a and iface_b.node is b
        # Reverse orientation swaps the tuple.
        iface_b2, iface_a2, link_ba2, link_ab2 = topo.edge(b, a)
        assert link_ba2 is backward and iface_b2 is iface_b

    def test_links_iterates_each_direction_once(self):
        topo = Topology()
        a, b, c = topo.add_host("a"), topo.add_host("b"), topo.add_host("c")
        topo.link(a, b)
        topo.link(b, c)
        assert len(list(topo.links())) == 4  # 2 physical links x 2 directions

    def test_run_max_events(self):
        topo = Topology()
        fired = []
        for index in range(5):
            topo.sim.schedule(float(index), fired.append, index)
        topo.run(max_events=2)
        assert fired == [0, 1]


class TestEngineCounters:
    def test_events_processed(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 7

    def test_cancelled_not_counted(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        sim.run()
        assert sim.events_processed == 0


class TestGatewayTracing:
    def test_gateway_records_rx(self):
        trace = PacketTrace()
        topo = Topology()
        inside = topo.add_host("inside")
        outside = topo.add_host("outside")
        gateway = PXGateway(topo.sim, "pxgw", config=GatewayConfig(), trace=trace)
        topo.add_node(gateway)
        topo.link(inside, gateway, mtu=9000)
        topo.link(gateway, outside, mtu=1500)
        topo.build_routes()
        gateway.mark_internal(gateway.interfaces[0])
        inside.send_udp(outside.ip, 1, 9, b"traced")
        topo.run(until=1.0)
        assert trace.count(event="rx", point="pxgw") == 1
