"""Fuzz the wire parsers: hostile bytes must fail cleanly (ValueError),
never with an unhandled struct/index error — middleboxes parse
attacker-controlled input."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import decode_caravan
from repro.packet import Packet, build_udp
from repro.packet.gtpu import GTPUHeader
from repro.packet.ip import IPv4Header
from repro.packet.tcp import TCPHeader
from repro.packet.udp import UDPHeader


@settings(max_examples=200)
@given(data=st.binary(max_size=256))
def test_packet_from_bytes_fails_cleanly(data):
    try:
        packet = Packet.from_bytes(data, verify=False)
    except ValueError:
        return
    assert isinstance(packet, Packet)


@settings(max_examples=200)
@given(data=st.binary(max_size=128))
def test_header_parsers_fail_cleanly(data):
    for parser in (IPv4Header.unpack, TCPHeader.unpack, UDPHeader.unpack,
                   GTPUHeader.unpack):
        try:
            parser(data)
        except ValueError:
            pass


@settings(max_examples=150)
@given(mutation=st.binary(min_size=1, max_size=64),
       offset=st.integers(min_value=0, max_value=200))
def test_corrupted_caravan_fails_cleanly(mutation, offset):
    from repro.core import encode_caravan

    packets = [build_udp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"x" * 100, ip_id=i)
               for i in range(3)]
    caravan = encode_caravan(packets)
    body = bytearray(caravan.payload)
    start = min(offset, max(0, len(body) - len(mutation)))
    body[start : start + len(mutation)] = mutation
    caravan.payload = bytes(body)
    try:
        datagrams = decode_caravan(caravan)
    except ValueError:
        return
    # If it still parses, every piece must be internally consistent.
    assert all(d.udp.length == 8 + len(d.payload) for d in datagrams)


@settings(max_examples=100)
@given(truncate_to=st.integers(min_value=0, max_value=60))
def test_truncated_real_packet_fails_cleanly(truncate_to):
    wire = build_udp("10.0.0.1", "10.0.0.2", 5, 6, payload=b"hello world").to_bytes()
    truncated = wire[:truncate_to]
    try:
        Packet.from_bytes(truncated)
    except ValueError:
        pass
