"""Tests proving §3's claim: naive UDP resizing breaks sealed datagrams,
PX-caravan does not."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CaravanMergeEngine, CaravanSplitEngine, GatewayConfig, PXGateway, decode_caravan
from repro.net import Topology
from repro.packet import build_udp
from repro.workload.datagram_app import SealedDatagramCodec, naive_merge, naive_split


def sealed_packets(codec, count=6, size=1000, ip_id_base=100):
    packets = []
    for index in range(count):
        payload = codec.seal(bytes([index]) * size)
        packets.append(build_udp("198.51.100.1", "10.1.0.5", 4433, 4433,
                                 payload=payload, ip_id=ip_id_base + index))
    return packets


class TestCodec:
    def test_seal_open_roundtrip(self):
        sender = SealedDatagramCodec(b"shared-key-123")
        receiver = SealedDatagramCodec(b"shared-key-123")
        sealed = sender.seal(b"hello quic")
        assert receiver.open(sealed) == b"hello quic"

    def test_payload_is_opaque(self):
        codec = SealedDatagramCodec(b"shared-key-123")
        sealed = codec.seal(b"A" * 64)
        assert b"A" * 64 not in sealed

    def test_wrong_key_rejected(self):
        sealed = SealedDatagramCodec(b"shared-key-123").seal(b"secret")
        assert SealedDatagramCodec(b"another-key-456").open(sealed) is None

    def test_truncation_rejected(self):
        codec = SealedDatagramCodec(b"shared-key-123")
        sealed = codec.seal(b"payload")
        assert codec.open(sealed[:-1]) is None
        assert codec.open(sealed[:4]) is None

    def test_extension_rejected(self):
        codec = SealedDatagramCodec(b"shared-key-123")
        assert codec.open(codec.seal(b"payload") + b"x") is None

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            SealedDatagramCodec(b"abc")

    @settings(max_examples=25)
    @given(st.binary(min_size=0, max_size=2000))
    def test_roundtrip_property(self, plaintext):
        sender = SealedDatagramCodec(b"property-key-1")
        receiver = SealedDatagramCodec(b"property-key-1")
        assert receiver.open(sender.seal(plaintext)) == plaintext


class TestNaiveResizingBreaksApps:
    def test_naive_merge_breaks_every_datagram(self):
        sender = SealedDatagramCodec(b"shared-key-123")
        receiver = SealedDatagramCodec(b"shared-key-123")
        packets = sealed_packets(sender)
        merged = naive_merge(packets)
        # The receiver gets one big datagram; nothing inside opens.
        assert receiver.open(merged.payload) is None

    def test_naive_split_breaks_every_piece(self):
        sender = SealedDatagramCodec(b"shared-key-123")
        receiver = SealedDatagramCodec(b"shared-key-123")
        big = build_udp("1.1.1.1", "2.2.2.2", 1, 2, payload=sender.seal(b"z" * 3000))
        for piece in naive_split(big, 1500):
            assert receiver.open(piece.payload) is None

    def test_caravan_preserves_every_datagram(self):
        sender = SealedDatagramCodec(b"shared-key-123")
        receiver = SealedDatagramCodec(b"shared-key-123")
        packets = sealed_packets(sender)
        merge = CaravanMergeEngine(max_payload=8972)
        split = CaravanSplitEngine()
        transported = []
        for packet in packets:
            transported.extend(merge.feed(packet))
        transported.extend(merge.flush())
        restored = []
        for packet in transported:
            restored.extend(split.process(packet))
        opened = [receiver.open(p.payload) for p in restored]
        assert all(result is not None for result in opened)
        assert receiver.rejected == 0

    def test_end_to_end_through_pxgw(self):
        # Sealed datagrams from a legacy CDN cross a PXGW into the
        # b-network as caravans; a caravan-aware receiver opens them all.
        topo = Topology()
        viewer = topo.add_host("viewer")
        cdn = topo.add_host("cdn")
        gateway = PXGateway(topo.sim, "pxgw",
                            config=GatewayConfig(elephant_threshold_packets=2))
        topo.add_node(gateway)
        topo.link(viewer, gateway, mtu=9000)
        topo.link(gateway, cdn, mtu=1500)
        topo.build_routes()
        gateway.mark_internal(gateway.interfaces[0])

        sender = SealedDatagramCodec(b"shared-key-123")
        receiver = SealedDatagramCodec(b"shared-key-123")
        opened = []

        def on_media(packet, host):
            for datagram in decode_caravan(packet):
                result = receiver.open(datagram.payload)
                if result is not None:
                    opened.append(result)

        viewer.on_udp(4433, on_media)
        for index in range(30):
            cdn.send_udp(viewer.ip, 4433, 4433, sender.seal(bytes([index]) * 1000))
        topo.run(until=1.0)
        assert len(opened) == 30
        assert receiver.rejected == 0
        assert gateway.stats.caravans_built > 0
