"""Unit and property tests for the Internet checksum helpers."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet.checksum import (
    incremental_update,
    internet_checksum,
    ones_complement_sum,
    pseudo_header,
    verify_checksum,
)


def test_known_rfc1071_example():
    # Example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2 -> checksum 220d
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert ones_complement_sum(data) == 0xDDF2
    assert internet_checksum(data) == 0x220D


def test_empty_buffer():
    assert internet_checksum(b"") == 0xFFFF
    assert ones_complement_sum(b"") == 0


def test_odd_length_pads_with_zero():
    assert ones_complement_sum(b"\xab") == ones_complement_sum(b"\xab\x00")


def test_verify_buffer_with_embedded_checksum():
    data = bytearray(b"\x45\x00\x00\x1c\x00\x01\x00\x00\x40\x11\x00\x00\x0a\x00\x00\x01\x0a\x00\x00\x02")
    checksum = internet_checksum(bytes(data))
    data[10:12] = struct.pack("!H", checksum)
    assert verify_checksum(bytes(data))


def test_chained_sums_match_concatenated():
    a, b = b"\x12\x34\x56\x78", b"\x9a\xbc"
    partial = ones_complement_sum(a)
    assert ones_complement_sum(b, partial) == ones_complement_sum(a + b)


@given(st.binary(min_size=0, max_size=512))
def test_checksum_of_data_plus_checksum_verifies(data):
    # Pad to even length so we can append the checksum as a word.
    if len(data) % 2:
        data += b"\x00"
    checksum = internet_checksum(data)
    assert verify_checksum(data + struct.pack("!H", checksum))


@given(
    st.binary(min_size=4, max_size=128).filter(lambda d: len(d) % 2 == 0),
    st.integers(min_value=0, max_value=0xFFFF),
)
def test_incremental_update_still_verifies(data, new_word):
    # RFC 1624's ±0 ambiguity means the updated checksum may be the
    # alternate representation of the recomputed one; the invariant that
    # matters on the wire is that receivers still verify the buffer.
    checksum = internet_checksum(data)
    old_word = struct.unpack_from("!H", data)[0]
    new_data = struct.pack("!H", new_word) + data[2:]
    updated = incremental_update(checksum, old_word, new_word)
    assert verify_checksum(new_data + struct.pack("!H", updated))


def test_incremental_update_exact_on_typical_header():
    # On non-degenerate data (sum not ±0) the update is bit-exact.
    data = bytes(range(1, 21))
    checksum = internet_checksum(data)
    old_word = struct.unpack_from("!H", data)[0]
    new_data = struct.pack("!H", 0x1234) + data[2:]
    assert incremental_update(checksum, old_word, 0x1234) == internet_checksum(new_data)


def test_pseudo_header_layout():
    pseudo = pseudo_header(0x0A000001, 0x0A000002, 17, 100)
    assert len(pseudo) == 12
    assert pseudo[8] == 0  # zero byte
    assert pseudo[9] == 17  # protocol
    assert struct.unpack("!H", pseudo[10:])[0] == 100


@given(st.binary(max_size=256), st.binary(max_size=256))
def test_ones_complement_sum_is_order_independent(a, b):
    # Pad both to even so word boundaries are preserved under swap.
    if len(a) % 2:
        a += b"\x00"
    if len(b) % 2:
        b += b"\x00"
    assert ones_complement_sum(a + b) == ones_complement_sum(b + a)
