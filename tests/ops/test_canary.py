"""The canary controller: staged verdicts, determinism, zero-loss rollback."""

import pytest

from repro.core import GatewayConfig
from repro.ops import (
    DEFAULT_STAGES,
    PROMOTED,
    ROLLED_BACK,
    CanaryController,
    Deployment,
    RolloutStage,
    production_deployment,
    run_twin_pair,
)
from repro.ops.canary import report_to_json


def test_stage_validation():
    with pytest.raises(ValueError):
        RolloutStage("bad", 0.0, 1.0)
    with pytest.raises(ValueError):
        RolloutStage("bad", 1.5, 1.0)
    with pytest.raises(ValueError):
        RolloutStage("bad", 0.5, 0.0)
    with pytest.raises(ValueError):
        CanaryController(production_deployment(), production_deployment(),
                         stages=())


def test_default_ladder_widens_monotonically():
    fractions = [stage.fraction for stage in DEFAULT_STAGES]
    horizons = [stage.observe_until for stage in DEFAULT_STAGES]
    assert fractions == sorted(fractions)
    assert horizons == sorted(horizons)
    assert horizons[-1] == 3.0  # the schedule's full horizon


def test_identical_deployments_promote():
    report = CanaryController(
        production_deployment(), production_deployment(), seed=0,
    ).run()
    assert report["verdict"] == PROMOTED
    assert report["rolled_back_at"] is None
    assert report["rollback"] is None
    assert [stage["status"] for stage in report["stages"]] == ["pass"] * 3
    assert all(stage["alerts"] == [] for stage in report["stages"])
    assert all(stage["guardrail_breaches"] == [] for stage in report["stages"])
    # Twin symmetry: identical deployments, identical outcomes.
    assert report["notes"]["baseline"] == report["notes"]["candidate"]


def test_regression_rolls_back_at_first_failing_stage():
    candidate = Deployment(
        name="blackhole",
        config=GatewayConfig(imtu=9000, emtu=3000,
                             elephant_threshold_packets=2,
                             header_only_dma=True),
    )
    controller = CanaryController(production_deployment(), candidate, seed=0)
    report = controller.run()
    assert report["verdict"] == ROLLED_BACK
    assert report["rolled_back_at"] == "canary-1"
    statuses = [stage["status"] for stage in report["stages"]]
    assert statuses == ["fail", "not-reached", "not-reached"]
    failing = report["stages"][0]
    assert failing["alerts"] or failing["guardrail_breaches"]


def test_rollback_is_a_live_zero_loss_takeover():
    candidate = Deployment(
        name="blackhole",
        config=GatewayConfig(imtu=9000, emtu=3000,
                             elephant_threshold_packets=2,
                             header_only_dma=True),
    )
    controller = CanaryController(production_deployment(), candidate, seed=0)
    report = controller.run()
    rollback = report["rollback"]
    assert rollback["mechanism"] == "failover-takeover"
    assert rollback["reason"] == "canary-rollback"
    assert rollback["zero_loss"] is True
    assert rollback["pending_after"] is False
    # The scheduled mid-run takeover plus the rollback drill.
    assert rollback["takeovers"] == 2
    assert controller.candidate_run.world.failover.takeovers == 2


def test_alert_evidence_cites_candidate_history():
    candidate = Deployment(
        name="merge-off",
        config=GatewayConfig(imtu=9000, emtu=1500,
                             elephant_threshold_packets=1_000_000,
                             header_only_dma=True),
    )
    report = CanaryController(production_deployment(), candidate, seed=0).run()
    failing = next(s for s in report["stages"] if s["status"] == "fail")
    assert "merge-ratio-floor" in failing["alerts"]
    evidence = [e for e in failing["alert_evidence"]
                if e["rule"] == "merge-ratio-floor"]
    assert evidence, "cited alerts must come with history entries"
    assert all(e["time"] <= failing["observe_until"] for e in evidence)
    assert {e["edge"] for e in evidence} <= {"pending", "fired", "resolved",
                                             "cleared"}
    assert "fired" in {e["edge"] for e in evidence}


def test_report_json_is_byte_identical_across_runs():
    def run():
        return CanaryController(
            production_deployment(), production_deployment(), seed=2,
        ).run()

    assert report_to_json(run()) == report_to_json(run())


def test_twin_pair_sees_identical_offered_load():
    baseline, candidate = run_twin_pair(
        production_deployment(), production_deployment(), seed=0)
    # Same schedule, byte-identical worlds: every exported series agrees.
    assert (baseline.world.obs.registry.to_prometheus_text()
            == candidate.world.obs.registry.to_prometheus_text())


def test_stage_snapshots_feed_guardrails_per_horizon():
    controller = CanaryController(
        production_deployment(), production_deployment(), seed=0)
    controller.run()
    world = controller.candidate_run.world
    # Mid-run horizons captured in-sim; the final stage reads the
    # end-of-run snapshot.
    assert set(world.snapshots) == {1.0, 2.0}
    rx = 'px_gateway_rx_packets_total{gateway="pxgw"}'
    assert world.snapshots[1.0][rx] <= world.snapshots[2.0][rx]
