"""The extracted workload schedule: byte-identity and injectability.

The twin-world contract rests on two properties proven here: the
default schedule reproduces the historical observed-world workload
*byte-for-byte* (so every pinned digest survives the refactor), and an
explicitly supplied schedule/config reaches the world unchanged.
"""

import pytest

from repro.obs import default_workload_schedule, run_observed_world
from repro.obs.world import EXTERNAL_MTU, INTERNAL_MTU, WorkloadSchedule


def test_default_schedule_reproduces_historical_workload():
    schedule = default_workload_schedule(seed=0)
    assert schedule.download_bytes == 48_000
    assert schedule.upload_bytes == 24_000
    assert schedule.inbound_payloads == tuple(
        bytes([1, i & 0xFF]) * 500 for i in range(24))
    assert schedule.inbound_bursts == ((0.30, 0, 12), (0.60, 12, 12))
    assert schedule.outbound_payloads == tuple(
        bytes([2, i & 0xFF]) * 600 for i in range(12))
    assert schedule.outbound_at == 0.70
    assert schedule.probe_at == 0.40
    assert schedule.takeover_at == 0.9
    assert schedule.settle_until == 0.2
    assert schedule.horizon == 3.0


def test_explicit_default_schedule_is_byte_identical_to_implicit():
    implicit = run_observed_world(seed=0)
    explicit = run_observed_world(
        seed=0, schedule=default_workload_schedule(seed=0))
    assert (implicit.obs.registry.to_prometheus_text()
            == explicit.obs.registry.to_prometheus_text())
    assert implicit.obs.tracer.sequence() == explicit.obs.tracer.sequence()
    assert implicit.timeline.to_json() == explicit.timeline.to_json()
    assert implicit.alerts.to_json() == explicit.alerts.to_json()
    assert implicit.notes == explicit.notes


def test_same_schedule_object_reusable_across_worlds():
    schedule = default_workload_schedule(seed=0)
    first = run_observed_world(seed=0, schedule=schedule)
    second = run_observed_world(seed=0, schedule=schedule)
    assert (first.obs.registry.to_prometheus_text()
            == second.obs.registry.to_prometheus_text())


def test_scale_multiplies_transfer_sizes():
    schedule = default_workload_schedule(seed=0, scale=2.0)
    assert schedule.download_bytes == 96_000
    assert schedule.upload_bytes == 48_000
    assert all(len(p) == 2000 for p in schedule.inbound_payloads)
    assert all(len(p) == 2400 for p in schedule.outbound_payloads)
    assert schedule.offered_bytes() == 2 * default_workload_schedule(0).offered_bytes()
    with pytest.raises(ValueError):
        default_workload_schedule(seed=0, scale=0)


def test_jitter_is_seeded_and_deterministic():
    plain = default_workload_schedule(seed=4)
    same_a = default_workload_schedule(seed=4, jitter=0.05)
    same_b = default_workload_schedule(seed=4, jitter=0.05)
    other = default_workload_schedule(seed=5, jitter=0.05)
    assert same_a == same_b
    assert same_a.inbound_bursts != plain.inbound_bursts
    assert same_a.inbound_bursts != other.inbound_bursts
    assert all(abs(a[0] - p[0]) <= 0.05 for a, p in
               zip(same_a.inbound_bursts, plain.inbound_bursts))
    with pytest.raises(ValueError):
        default_workload_schedule(seed=0, jitter=-1)


def test_schedule_to_dict_is_json_safe_description():
    doc = default_workload_schedule(seed=0).to_dict()
    assert doc["inbound_datagrams"] == 24
    assert doc["outbound_datagrams"] == 12
    assert doc["offered_bytes"] == 48_000 + 24_000 + 24 * 1000 + 12 * 1200
    assert not any(isinstance(v, bytes) for v in doc.values())


def test_probe_and_takeover_are_skippable():
    schedule = WorkloadSchedule(
        download_bytes=10_000, upload_bytes=0,
        probe_at=None, takeover_at=None, horizon=1.0,
    )
    world = run_observed_world(seed=0, schedule=schedule)
    assert world.notes["pmtu"] is None
    assert world.failover.takeovers == 0
    assert world.notes["downloaded"] == 10_000
    assert world.notes["datagrams_in"] == 0


def test_injected_config_reaches_the_gateway():
    from repro.core import GatewayConfig

    config = GatewayConfig(imtu=9000, emtu=1500, merge_timeout=0.25)
    world = run_observed_world(seed=0, config=config)
    assert world.gateway.config is config
    assert world.config is config


def test_world_exposes_links_by_role():
    world = run_observed_world(
        seed=0,
        schedule=WorkloadSchedule(download_bytes=1000, upload_bytes=0,
                                  probe_at=None, takeover_at=None,
                                  horizon=0.5),
    )
    assert set(world.links) == {"int_out", "int_in", "ext_out", "ext_in"}
    assert world.links["int_out"].mtu == INTERNAL_MTU
    assert world.links["ext_out"].mtu == EXTERNAL_MTU


def test_snapshot_at_captures_monotone_counters():
    world = run_observed_world(seed=0, snapshot_at=(1.0, 2.0))
    assert set(world.snapshots) == {1.0, 2.0}
    rx = 'px_gateway_rx_packets_total{gateway="pxgw"}'
    early, late = world.snapshots[1.0], world.snapshots[2.0]
    final = world.obs.registry.snapshot()
    assert 0 < early[rx] <= late[rx] <= final[rx]


def test_mutate_hook_runs_before_any_traffic():
    seen = {}

    def mutate(world):
        seen["now"] = world.topo.sim.now
        seen["rx"] = world.obs.registry.snapshot().get(
            'px_gateway_rx_packets_total{gateway="pxgw"}', 0.0)
        seen["links"] = set(world.links)

    run_observed_world(seed=0, mutate=mutate)
    assert seen["now"] == 0.0
    assert seen["rx"] == 0.0
    assert seen["links"] == {"int_out", "int_in", "ext_out", "ext_in"}
