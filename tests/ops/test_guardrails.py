"""Unit tests for repro.ops.guardrails: tolerance bands and indicators."""

import math

import pytest

from repro.ops.guardrails import (
    Guardrail,
    default_guardrails,
    evaluate_guardrails,
    histogram_quantile,
    snapshot_indicators,
)


def test_direction_and_tolerance_validation():
    with pytest.raises(ValueError):
        Guardrail(name="g", indicator="i", direction="sideways")
    with pytest.raises(ValueError):
        Guardrail(name="g", indicator="i", direction="lower",
                  rel_tolerance=-0.1)


def test_lower_is_better_band():
    rail = Guardrail(name="g", indicator="i", direction="lower",
                     rel_tolerance=0.25, abs_tolerance=0.05)
    assert rail.allowed(1.0) == pytest.approx(1.30)
    assert not rail.breached(1.0, 1.30)
    assert rail.breached(1.0, 1.31)
    # abs_tolerance gives a zero baseline real slack.
    assert not rail.breached(0.0, 0.05)
    assert rail.breached(0.0, 0.06)


def test_higher_is_better_band():
    rail = Guardrail(name="g", indicator="i", direction="higher",
                     rel_tolerance=0.30, abs_tolerance=0.01)
    assert rail.allowed(0.10) == pytest.approx(0.06)
    assert not rail.breached(0.10, 0.06)
    assert rail.breached(0.10, 0.059)


def test_zero_tolerance_means_any_regression_breaches():
    rail = Guardrail(name="g", indicator="i", direction="lower")
    assert not rail.breached(0.0, 0.0)
    assert rail.breached(0.0, 1.0)


def test_no_data_never_breaches():
    rail = Guardrail(name="g", indicator="i", direction="lower")
    assert not rail.breached(None, 5.0)
    assert not rail.breached(5.0, None)


def test_histogram_quantile_cumulative_buckets():
    snapshot = {
        'lat_bucket{le="0.001"}': 50.0,
        'lat_bucket{le="0.01"}': 95.0,
        'lat_bucket{le="0.1"}': 99.0,
        'lat_bucket{le="+Inf"}': 100.0,
        "lat_count": 100.0,
    }
    assert histogram_quantile(snapshot, "lat", 0.50) == 0.001
    assert histogram_quantile(snapshot, "lat", 0.95) == 0.01
    assert histogram_quantile(snapshot, "lat", 0.999) == math.inf
    assert histogram_quantile({}, "lat") is None
    assert histogram_quantile({'lat_bucket{le="+Inf"}': 0.0}, "lat") is None


def test_snapshot_indicators():
    labels = '{gateway="pxgw"}'
    snapshot = {
        f"px_gateway_rx_packets_total{labels}": 100.0,
        f"px_gateway_tx_packets_total{labels}": 80.0,
        f"px_gateway_merged_packets_total{labels}": 5.0,
        f"px_gateway_dropped_packets_total{labels}": 2.0,
        'px_gateway_residency_seconds_bucket{le="0.001"}': 96.0,
        'px_gateway_residency_seconds_bucket{le="+Inf"}': 100.0,
    }
    indicators = snapshot_indicators(snapshot, oversize_egress=3)
    assert indicators["merge_ratio"] == pytest.approx(0.05)
    assert indicators["drop_count"] == 2.0
    assert indicators["egress_amplification"] == pytest.approx(0.8)
    assert indicators["oversize_egress"] == 3.0
    assert indicators["p95_residency"] == 0.001


def test_snapshot_indicators_no_traffic_is_no_data():
    indicators = snapshot_indicators({})
    assert indicators["merge_ratio"] is None
    assert indicators["egress_amplification"] is None
    assert indicators["p95_residency"] is None


def test_evaluate_guardrails_cites_values_and_bounds():
    rails = default_guardrails()
    baseline = {"merge_ratio": 0.05, "drop_count": 0.0,
                "oversize_egress": 0.0, "egress_amplification": 0.8,
                "p95_residency": 0.001}
    healthy = dict(baseline)
    assert evaluate_guardrails(rails, baseline, healthy) == []

    sick = dict(baseline, drop_count=4.0, merge_ratio=0.0)
    breaches = evaluate_guardrails(rails, baseline, sick)
    assert {b["guardrail"] for b in breaches} == {"merge-ratio",
                                                  "gateway-drops"}
    drops = next(b for b in breaches if b["guardrail"] == "gateway-drops")
    assert drops["baseline"] == 0.0
    assert drops["candidate"] == 4.0
    assert drops["allowed"] == 0.0
    assert drops["description"]


def test_default_guardrails_cover_the_slo_surface():
    indicators = {rail.indicator for rail in default_guardrails()}
    assert indicators == {"merge_ratio", "drop_count", "oversize_egress",
                          "egress_amplification", "p95_residency"}
