"""End-to-end tests for the `repro canary` CLI verb."""

import json

import pytest

from repro.cli import main


def test_single_incident_table(capsys):
    code = main(["canary", "--incident", "benign-candidate"])
    out = capsys.readouterr().out
    assert code == 0
    assert "benign-candidate" in out
    assert "PROMOTED" in out
    assert "canary-1" in out and "canary-50" in out


def test_rolled_back_incident_exits_nonzero(capsys):
    code = main(["canary", "--incident", "mis-sized-mtu-rollout"])
    out = capsys.readouterr().out
    assert code == 1
    assert "ROLLED_BACK" in out
    assert "rollback" in out.lower()


def test_unknown_incident_exits_two(capsys):
    code = main(["canary", "--incident", "nope"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown incident" in err
    assert "benign-candidate" in err  # lists the valid names


def test_single_incident_json(capsys):
    code = main(["canary", "--incident", "benign-candidate", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    doc = json.loads(out)
    assert doc["schema"] == "repro-canary/1"
    assert doc["verdict"] == "PROMOTED"
    assert doc["incident"] == "benign-candidate"


def test_corpus_json_double_run_is_byte_identical(tmp_path, capsys):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    assert main(["canary", "--corpus", "--json", "--out", str(first)]) == 0
    assert main(["canary", "--corpus", "--json", "--out", str(second)]) == 0
    capsys.readouterr()
    assert first.read_bytes() == second.read_bytes()
    doc = json.loads(first.read_text())
    assert doc["schema"] == "repro-canary-corpus/1"
    assert doc["ok"] is True
    assert len(doc["incidents"]) == 6


def test_corpus_table_lists_every_incident(capsys):
    code = main(["canary", "--corpus"])
    out = capsys.readouterr().out
    assert code == 0
    for name in ("benign-candidate", "mis-sized-mtu-rollout",
                 "pmtud-hardening-disabled", "caravan-flush-timer-regression",
                 "merge-disabled-config", "bypass-under-nic-pressure"):
        assert name in out


def test_seed_changes_the_report(capsys):
    assert main(["canary", "--incident", "benign-candidate", "--json"]) == 0
    base = capsys.readouterr().out
    assert main(["canary", "--incident", "benign-candidate", "--json",
                 "--seed", "7"]) == 0
    other = capsys.readouterr().out
    assert json.loads(base)["seed"] == 0
    assert json.loads(other)["seed"] == 7
