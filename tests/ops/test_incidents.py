"""The incident corpus has teeth: expected verdicts with cited evidence."""

import pytest

from repro.ops import (
    INCIDENTS,
    PROMOTED,
    ROLLED_BACK,
    incident,
    incident_names,
    production_deployment,
    run_corpus,
    run_incident,
    run_twin_pair,
)


@pytest.fixture(scope="module")
def corpus():
    return run_corpus(seed=0)


def test_unknown_incident_raises():
    with pytest.raises(KeyError):
        incident("no-such-incident")


def test_corpus_covers_both_verdicts():
    expected = [item.expected for item in INCIDENTS]
    assert expected.count(PROMOTED) == 1
    assert expected.count(ROLLED_BACK) == 5
    assert len(set(incident_names())) == len(INCIDENTS)


def test_every_incident_reaches_its_expected_verdict(corpus):
    assert corpus["ok"] is True
    for report in corpus["incidents"]:
        assert report["verdict"] == report["expected"], report["incident"]


def test_every_regression_cites_alert_or_guardrail_evidence(corpus):
    for report in corpus["incidents"]:
        if report["expected"] != ROLLED_BACK:
            continue
        failing = next(s for s in report["stages"] if s["status"] == "fail")
        assert failing["alerts"] or failing["guardrail_breaches"], (
            report["incident"])


def test_every_rollback_is_zero_loss(corpus):
    for report in corpus["incidents"]:
        if report["verdict"] != ROLLED_BACK:
            continue
        assert report["rollback"]["zero_loss"] is True, report["incident"]
        assert report["rollback"]["pending_after"] is False


def test_benign_candidate_promotes_under_chaotic_weather(corpus):
    report = next(r for r in corpus["incidents"]
                  if r["incident"] == "benign-candidate")
    assert report["verdict"] == PROMOTED
    assert [s["status"] for s in report["stages"]] == ["pass"] * 3


def test_misized_mtu_candidate_drops_where_baseline_does_not(corpus):
    report = next(r for r in corpus["incidents"]
                  if r["incident"] == "mis-sized-mtu-rollout")
    failing = report["stages"][0]
    drops = next(b for b in failing["guardrail_breaches"]
                 if b["guardrail"] == "gateway-drops")
    assert drops["baseline"] == 0
    assert drops["candidate"] > 0


def test_hardening_differential_is_at_the_cache():
    item = incident("pmtud-hardening-disabled")
    baseline, candidate = run_twin_pair(
        production_deployment(), item.candidate, seed=0,
        environment=item.environment)
    base_cache = baseline.world.gateway.pmtu_cache
    cand_cache = candidate.world.gateway.pmtu_cache
    # Same forged report hit both twins: the hardened cache refused it,
    # the trusting one swallowed it and clamped egress.
    assert base_cache.poison_rejected == 1
    assert len(base_cache._entries) == 0
    assert cand_cache.poison_rejected == 0
    assert len(cand_cache._entries) == 1
    tx = 'px_gateway_tx_packets_total{gateway="pxgw"}'
    assert (candidate.final_snapshot()[tx]
            > baseline.final_snapshot()[tx])


def test_nic_pressure_candidate_health_degrades_baseline_stays_healthy():
    item = incident("bypass-under-nic-pressure")
    baseline, candidate = run_twin_pair(
        production_deployment(), item.candidate, seed=0,
        environment=item.environment, schedule=item.schedule(0))
    transitions = 'px_health_transitions_total{gateway="pxgw"}'
    assert baseline.final_snapshot().get(transitions, 0) == 0
    assert candidate.final_snapshot().get(transitions, 0) > 0
    fallbacks = 'px_gateway_hdo_fallbacks_total{gateway="pxgw"}'
    assert baseline.final_snapshot().get(fallbacks, 0) == 0
    assert candidate.final_snapshot().get(fallbacks, 0) > 0


def test_corpus_json_is_byte_identical_across_runs():
    from repro.ops.canary import report_to_json

    assert (report_to_json(run_corpus(seed=1))
            == report_to_json(run_corpus(seed=1)))


def test_incident_report_carries_expectation_bookkeeping():
    report = run_incident("benign-candidate", seed=0)
    assert report["incident"] == "benign-candidate"
    assert report["expected"] == PROMOTED
    assert report["ok"] is True
    assert report["schema"] == "repro-canary/1"
