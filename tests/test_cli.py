"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gateway_defaults(self):
        args = build_parser().parse_args(["gateway"])
        assert args.imtu == 9000 and args.emtu == 1500

    def test_upf_options(self):
        args = build_parser().parse_args(["upf", "--mtu", "3000", "--flows", "10"])
        assert args.mtu == 3000 and args.flows == 10

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_upf_command(self, capsys):
        assert main(["upf", "--mtu", "1500", "--flows", "50"]) == 0
        out = capsys.readouterr().out
        assert "Gbps" in out and "cycles/packet" in out

    def test_survey_command(self, capsys):
        assert main(["survey", "-n", "20000"]) == 0
        out = capsys.readouterr().out
        assert "fragment delivery OK" in out

    def test_gateway_command(self, capsys):
        assert main(["gateway", "--megabytes", "1"]) == 0
        out = capsys.readouterr().out
        assert "conversion yield" in out
        assert "8960" in out  # raised MSS visible

    def test_fleet_command(self, capsys):
        assert main(["fleet", "--quick", "--workers", "1,2,4",
                     "--loss-drill"]) == 0
        out = capsys.readouterr().out
        assert "fleet_world scaling" in out
        assert "loss drill (crash)" in out
        assert "ok" in out

    def test_fleet_command_json(self, capsys):
        import json

        assert main(["fleet", "--quick", "--workers", "1,4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-fleet-world/1"
        assert [row["shards"] for row in payload["rows"]] == [1, 4]

    def test_fleet_command_rejects_bad_workers(self, capsys):
        assert main(["fleet", "--quick", "--workers", "x,y"]) == 2
