"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gateway_defaults(self):
        args = build_parser().parse_args(["gateway"])
        assert args.imtu == 9000 and args.emtu == 1500

    def test_upf_options(self):
        args = build_parser().parse_args(["upf", "--mtu", "3000", "--flows", "10"])
        assert args.mtu == 3000 and args.flows == 10

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_upf_command(self, capsys):
        assert main(["upf", "--mtu", "1500", "--flows", "50"]) == 0
        out = capsys.readouterr().out
        assert "Gbps" in out and "cycles/packet" in out

    def test_survey_command(self, capsys):
        assert main(["survey", "-n", "20000"]) == 0
        out = capsys.readouterr().out
        assert "fragment delivery OK" in out

    def test_gateway_command(self, capsys):
        assert main(["gateway", "--megabytes", "1"]) == 0
        out = capsys.readouterr().out
        assert "conversion yield" in out
        assert "8960" in out  # raised MSS visible
