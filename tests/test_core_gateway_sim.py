"""End-to-end simulation tests: hosts talking across a PXGateway."""

import pytest

from repro.core import FPMTUD_PORT, GatewayConfig, PXGateway, decode_caravan, is_caravan
from repro.net import Topology
from repro.packet import build_udp
from repro.tcpstack import TCPConnection, TCPListener


def px_topology(imtu=9000, emtu=1500, config=None, merge_timeout=200e-6):
    """inside_host (iMTU) -- PXGW -- outside_host (eMTU)."""
    topo = Topology()
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    config = config or GatewayConfig(imtu=imtu, emtu=emtu, merge_timeout=merge_timeout)
    gateway = PXGateway(topo.sim, "pxgw", config=config)
    topo.add_node(gateway)
    topo.link(inside, gateway, mtu=imtu, bandwidth_bps=10e9, delay=5e-5)
    topo.link(gateway, outside, mtu=emtu, bandwidth_bps=10e9, delay=5e-5)
    topo.build_routes()
    gateway.mark_internal(gateway.interfaces[0])
    return topo, inside, outside, gateway


class TestMssNegotiationAcrossGateway:
    def test_inside_sender_keeps_large_mss(self):
        topo, inside, outside, gateway = px_topology()
        listener = TCPListener(outside, 80, mss=1460)
        conn = TCPConnection(inside, 40000, outside.ip, 80, mss=8960)
        conn.connect()
        topo.run(until=1.0)
        # The SYN-ACK's MSS was raised to 8960 crossing into the b-network.
        assert conn.state == "ESTABLISHED"
        assert conn.send_mss == 8960
        # The outside server was capped to the external MSS.
        assert listener.connections[0].send_mss == 1460
        assert gateway.stats.mss_rewrites == 2  # SYN capped + SYN-ACK raised

    def test_without_clamp_inside_sender_stuck_small(self):
        config = GatewayConfig(mss_clamp=False, merge_timeout=200e-6)
        topo, inside, outside, _gateway = px_topology(config=config)
        TCPListener(outside, 80, mss=1460)
        conn = TCPConnection(inside, 40000, outside.ip, 80, mss=8960)
        conn.connect()
        topo.run(until=1.0)
        assert conn.send_mss == 1460  # negotiation fell to the outside MSS


class TestDownlinkMerge:
    def test_outside_to_inside_bulk_arrives_as_jumbos(self):
        topo, inside, outside, gateway = px_topology()
        listener = TCPListener(outside, 80, mss=1460)
        conn = TCPConnection(inside, 40000, outside.ip, 80, mss=8960)
        conn.connect()
        topo.run(until=0.5)
        server_conn = listener.connections[0]
        server_conn.send_bulk(1_000_000)
        topo.run(until=5.0)
        assert conn.bytes_delivered == 1_000_000
        # Merging happened: the gateway spliced jumbo segments.
        assert gateway.stats.merged_packets > 0
        sizes = gateway.stats.inbound_size_histogram
        assert 9000 in sizes and sizes[9000] > 50

    def test_conversion_yield_high_for_bulk_flow(self):
        topo, inside, outside, gateway = px_topology()
        listener = TCPListener(outside, 80, mss=1460)
        conn = TCPConnection(inside, 40000, outside.ip, 80, mss=8960)
        conn.connect()
        topo.run(until=0.5)
        listener.connections[0].send_bulk(2_000_000)
        topo.run(until=5.0)
        assert conn.bytes_delivered == 2_000_000
        assert gateway.stats.conversion_yield > 0.75

    def test_inside_receiver_sees_far_fewer_packets(self):
        topo, inside, outside, gateway = px_topology()
        listener = TCPListener(outside, 80, mss=1460)
        conn = TCPConnection(inside, 40000, outside.ip, 80, mss=8960)
        conn.connect()
        topo.run(until=0.5)
        rx_before = inside.rx_packets
        listener.connections[0].send_bulk(1_000_000)
        topo.run(until=5.0)
        data_packets = inside.rx_packets - rx_before
        # 1 MB at 1448 B/packet would be ~690 packets; jumbos cut ~6x.
        assert data_packets < 300


class TestUplinkSplit:
    def test_inside_to_outside_bulk_split_to_emtu(self):
        topo, inside, outside, gateway = px_topology()
        listener = TCPListener(outside, 80, mss=1460)
        conn = TCPConnection(inside, 40000, outside.ip, 80, mss=8960)
        conn.connect()
        topo.run(until=0.5)
        conn.send_bulk(1_000_000)
        topo.run(until=5.0)
        assert listener.connections[0].bytes_delivered == 1_000_000
        assert gateway.stats.split_segments > 0


class TestCaravanAcrossGateway:
    def test_udp_stream_bundled_and_decodable(self):
        topo, inside, outside, gateway = px_topology()
        received = []
        inside.on_udp(5001, lambda packet, host: received.append(packet))
        for index in range(24):
            outside.send_udp(inside.ip, 6000, 5001, b"\xab" * 1200)
        topo.run(until=1.0)
        caravans = [p for p in received if is_caravan(p)]
        assert caravans, "expected caravan bundles to reach the inside host"
        datagrams = []
        for packet in received:
            datagrams.extend(decode_caravan(packet))
        assert len(datagrams) == 24
        assert all(p.payload == b"\xab" * 1200 for p in datagrams)
        assert gateway.stats.caravans_built == len(caravans)

    def test_partial_caravan_flushed_by_timer(self):
        topo, inside, outside, gateway = px_topology()
        received = []
        inside.on_udp(5001, lambda packet, host: received.append(packet))
        for _ in range(3):  # not enough to fill an iMTU bundle
            outside.send_udp(inside.ip, 6000, 5001, b"z" * 1200)
        topo.run(until=1.0)
        datagrams = []
        for packet in received:
            datagrams.extend(decode_caravan(packet))
        assert len(datagrams) == 3

    def test_fpmtud_port_not_merged(self):
        topo, inside, outside, gateway = px_topology()
        received = []
        inside.on_udp(FPMTUD_PORT, lambda packet, host: received.append(packet))
        for _ in range(12):
            outside.send_udp(inside.ip, 6000, FPMTUD_PORT, b"probe" * 100)
        topo.run(until=1.0)
        assert len(received) == 12
        assert not any(is_caravan(p) for p in received)


class TestNeighborImtu:
    def test_advertised_peer_imtu_skips_translation(self):
        topo = Topology()
        inside = topo.add_host("inside")
        peer = topo.add_host("peer")
        gateway = PXGateway(topo.sim, "pxgw", config=GatewayConfig())
        topo.add_node(gateway)
        topo.link(inside, gateway, mtu=9000)
        topo.link(gateway, peer, mtu=9000)  # physical path supports jumbo
        topo.build_routes()
        gateway.mark_internal(gateway.interfaces[0])
        gateway.set_neighbor_imtu(gateway.interfaces[1], 9000)
        received = []
        peer.on_udp(7000, lambda packet, host: received.append(packet))
        inside.send_udp(peer.ip, 1, 7000, b"j" * 8000)
        topo.run(until=1.0)
        assert len(received) == 1
        assert received[0].total_len == 8028  # crossed untranslated
        assert gateway.untranslated == 1
