"""Property tests on the small wire protocols the reproduction defines:
F-PMTUD probes/reports, iMTU exchange announcements, caravan framing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.caravan import decode_caravan, encode_caravan
from repro.core.imtu_exchange import pack_announcement, parse_announcement
from repro.packet import build_udp
from repro.pmtud.echo import pack_echo_probe, parse_echo_ack
from repro.pmtud.fpmtud import _pack_probe, _pack_report, _parse_probe, _parse_report


class TestFpmtudWireFormat:
    @given(probe_id=st.integers(min_value=0, max_value=0xFFFFFFFF),
           size=st.integers(min_value=36, max_value=65535))
    def test_probe_roundtrip_and_exact_size(self, probe_id, size):
        payload = _pack_probe(probe_id, size)
        assert len(payload) == size - 28
        assert _parse_probe(payload) == probe_id

    def test_probe_too_small_rejected(self):
        with pytest.raises(ValueError):
            _pack_probe(1, 30)

    @given(probe_id=st.integers(min_value=0, max_value=0xFFFFFFFF),
           sizes=st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=50))
    def test_report_roundtrip(self, probe_id, sizes):
        payload = _pack_report(probe_id, sizes)
        assert _parse_report(payload) == (probe_id, sizes)

    @given(noise=st.binary(max_size=64))
    def test_parsers_reject_noise(self, noise):
        # Arbitrary bytes must never be misparsed as a probe/report
        # (unless they genuinely carry the magic).
        if not noise.startswith(b"FPMP"):
            assert _parse_probe(noise) is None
        if not noise.startswith(b"FPMR"):
            assert _parse_report(noise) is None


class TestEchoWireFormat:
    @given(probe_id=st.integers(min_value=0, max_value=0xFFFFFFFF),
           size=st.integers(min_value=36, max_value=65535))
    def test_probe_size_exact(self, probe_id, size):
        assert len(pack_echo_probe(probe_id, size)) == size - 28

    @given(noise=st.binary(max_size=32))
    def test_ack_parser_rejects_noise(self, noise):
        if not noise.startswith(b"PEAK"):
            assert parse_echo_ack(noise) is None


class TestImtuWireFormat:
    @given(imtu=st.integers(min_value=576, max_value=65535),
           hold=st.floats(min_value=0.1, max_value=6553.0, allow_nan=False))
    def test_announcement_roundtrip(self, imtu, hold):
        parsed = parse_announcement(pack_announcement(imtu, hold))
        assert parsed is not None
        parsed_imtu, parsed_hold = parsed
        assert parsed_imtu == imtu
        assert parsed_hold == pytest.approx(hold, abs=0.051)

    @given(noise=st.binary(max_size=32))
    def test_parser_rejects_noise(self, noise):
        if not noise.startswith(b"PXIM"):
            assert parse_announcement(noise) is None


class TestCaravanFramingProperty:
    @settings(max_examples=30)
    @given(payloads=st.lists(st.binary(min_size=0, max_size=2000),
                             min_size=2, max_size=20))
    def test_encode_decode_identity(self, payloads):
        packets = [
            build_udp("198.51.100.2", "10.1.0.3", 4444, 5555,
                      payload=payload, ip_id=index)
            for index, payload in enumerate(payloads)
        ]
        if sum(8 + len(p) for p in payloads) + 28 > 65535:
            return  # would not fit one IP packet; engines never build this
        caravan = encode_caravan(packets)
        restored = decode_caravan(caravan)
        assert [p.payload for p in restored] == payloads
        # Byte-exact through serialization as well.
        from repro.packet import Packet

        rewired = Packet.from_bytes(caravan.to_bytes())
        assert [p.payload for p in decode_caravan(rewired)] == payloads
