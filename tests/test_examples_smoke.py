"""Smoke tests: every example script runs to completion and says what
it promised.  Keeps the documentation executable."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "conversion yield" in out
        assert "8960" in out  # MSS raised by the gateway

    def test_pmtud_showdown(self):
        out = run_example("pmtud_showdown.py")
        assert "F-PMTUD" in out
        assert "FAILED" in out  # classical PMTUD dies at the blackhole
        assert "speedup" in out

    def test_caravan_streaming(self):
        out = run_example("caravan_streaming.py")
        assert "every frame intact and in order: True" in out

    def test_upf_acceleration(self):
        out = run_example("upf_acceleration.py")
        assert "speedup 9000 B over 1500 B" in out
        assert "GTP-U decapsulated" in out

    def test_bnetwork_federation(self):
        out = run_example("bnetwork_federation.py")
        assert "never clamped" in out
        assert "untouched" in out

    def test_wireshark_capture(self, tmp_path):
        target = tmp_path / "capture.pcap"
        out = run_example("wireshark_capture.py", str(target))
        assert "wrote" in out
        assert target.exists() and target.stat().st_size > 1000
