"""Netem determinism: same seed, same impairment sequence, same traces.

Regression tests for the seeded-Netem contract that the chaos harness
(and any reproducible experiment) depends on: every stochastic decision
must come from an rng the caller controls — never the module-global
``random`` — so two runs from one seed are bit-identical.
"""

import random

from repro.chaos import ChaosTap, trace_digest
from repro.net.topology import Topology
from repro.sim.netem import GilbertElliott, Netem


def impair_sequence(netem: Netem, n: int = 200):
    return [netem.impair() for _ in range(n)]


class TestSeededNetem:
    def test_same_seed_same_decisions(self):
        make = lambda: Netem(
            delay=1e-3, jitter=3e-4, loss=0.05, reorder=0.1, seed=1234
        )
        assert impair_sequence(make()) == impair_sequence(make())

    def test_different_seeds_diverge(self):
        a = Netem(delay=1e-3, jitter=3e-4, loss=0.05, seed=1)
        b = Netem(delay=1e-3, jitter=3e-4, loss=0.05, seed=2)
        assert impair_sequence(a) != impair_sequence(b)

    def test_seed_overrides_caller_rng(self):
        """A seeded Netem must ignore the rng the Link hands it, else the
        replay would depend on ambient link-rng state."""
        a = Netem(jitter=1e-3, loss=0.1, seed=7)
        b = Netem(jitter=1e-3, loss=0.1, seed=7)
        results_a = [a.impair(random.Random(111)) for _ in range(100)]
        results_b = [b.impair(random.Random(999)) for _ in range(100)]
        assert results_a == results_b

    def test_burst_loss_replays_from_seed(self):
        make = lambda: Netem(
            loss=0.01, burst_loss=GilbertElliott(), seed=55
        )
        assert impair_sequence(make(), 500) == impair_sequence(make(), 500)


class TestUnseededNetemStillDeterministic:
    def test_default_rng_is_not_module_global(self):
        """Without a seed or caller rng, Netem falls back to its own
        ``random.Random(0)`` — re-seeding the global rng between two
        fresh instances must not change anything."""
        random.seed(42)
        first = impair_sequence(Netem(jitter=1e-3, loss=0.2))
        random.seed(1337)
        second = impair_sequence(Netem(jitter=1e-3, loss=0.2))
        assert first == second


class TestLinkLevelReplay:
    def _run_once(self, seed: int) -> str:
        """A two-host world with an impaired link; returns the trace digest."""
        topo = Topology(seed=99)
        a = topo.add_host("a")
        b = topo.add_host("b")
        netem = Netem(
            delay=5e-4, jitter=2e-4, loss=0.1, reorder=0.2, seed=seed
        )
        topo.link(a, b, mtu=1500, delay=1e-4, netem=netem)
        topo.build_routes()

        taps = []
        for link in topo.links():
            tap = ChaosTap(f"{link.src.name}->{link.dst.name}")
            link.add_tap(tap)
            taps.append(tap)

        received = []
        b.on_udp(7000, lambda packet, host: received.append(packet.payload))
        for i in range(60):
            payload = bytes([i % 251]) * (100 + i)
            topo.sim.schedule_at(
                i * 1e-3, a.send_udp, b.ip, 6000, 7000, payload
            )
        topo.run(until=1.0)
        assert received  # traffic flowed (loss < 100 %)
        return trace_digest(taps)

    def test_same_seed_identical_traces(self):
        assert self._run_once(31) == self._run_once(31)

    def test_different_seed_different_traces(self):
        assert self._run_once(31) != self._run_once(32)
