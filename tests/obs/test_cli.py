"""CLI coverage for `repro metrics`, `repro trace`, and the PR 5 verbs
(`repro spans` / `repro timeline` / `repro alerts`)."""

import json

from repro.cli import main


def test_metrics_prometheus_to_stdout(capsys):
    assert main(["metrics", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE px_gateway_rx_packets_total counter" in out
    assert 'px_gateway_rx_packets_total{gateway="pxgw"}' in out
    assert "# TYPE px_gateway_inbound_packet_bytes histogram" in out


def test_metrics_json_to_file(tmp_path, capsys):
    out_path = tmp_path / "metrics.json"
    assert main(["metrics", "--format", "json", "--out", str(out_path)]) == 0
    assert "written to" in capsys.readouterr().out
    dump = json.loads(out_path.read_text())
    names = {entry["name"] for entry in dump["series"]}
    assert "px_upf_uplink_packets_total" in names
    assert "px_pmtud_probes_sent_total" in names


def test_trace_summary(capsys):
    assert main(["trace", "--summary"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["recorded"] > 0
    assert summary["kinds"]["worker-swap"] == 1


def test_trace_filtered_events_are_json_lines(capsys):
    assert main(["trace", "--kind", "pmtud-report", "--limit", "5"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines
    for line in lines:
        event = json.loads(line)
        assert event["kind"] == "pmtud-report"
        assert event["pmtu"] == 1500


def test_trace_jsonl_events_are_compact_lines(capsys):
    assert main(["trace", "--kind", "pmtud-report", "--jsonl"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines
    for line in lines:
        assert ": " not in line and ", " not in line  # compact separators
        assert json.loads(line)["kind"] == "pmtud-report"


def test_trace_jsonl_summary_is_one_line(capsys):
    assert main(["trace", "--summary", "--jsonl"]) == 0
    out = capsys.readouterr().out.strip()
    assert "\n" not in out
    assert json.loads(out)["recorded"] > 0


def test_spans_summary(capsys):
    assert main(["spans", "--summary"]) == 0
    summary = json.loads(capsys.readouterr().out)
    balance = summary["balance"]
    assert balance["opened"] == balance["closed"] + balance["dropped"]
    assert summary["anomalies"] == 0
    assert summary["kinds"]["merged"] > 0
    assert summary["latency"]["px_gateway_residency_seconds"]["count"] > 0


def test_spans_export_and_jsonl(tmp_path, capsys):
    out_path = tmp_path / "spans.json"
    assert main(["spans", "--out", str(out_path), "--limit", "10"]) == 0
    assert "written to" in capsys.readouterr().out
    doc = json.loads(out_path.read_text())
    assert len(doc["spans"]) == 10
    assert main(["spans", "--jsonl", "--limit", "3"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 3
    assert all("sid" in json.loads(line) for line in lines)


def test_timeline_json_and_jsonl(tmp_path, capsys):
    out_path = tmp_path / "timeline.json"
    assert main(["timeline", "--out", str(out_path)]) == 0
    note = capsys.readouterr().out
    assert "ticks" in note and "written to" in note
    doc = json.loads(out_path.read_text())
    assert doc["ticks"] > 20
    assert doc["samples"]
    assert main(["timeline", "--format", "jsonl", "--interval", "0.5"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    header = json.loads(lines[0])["timeline"]
    assert header["interval"] == 0.5
    assert len(lines) == 1 + header["ticks"]


def test_timeline_is_byte_identical_across_invocations(tmp_path):
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    assert main(["timeline", "--out", str(first)]) == 0
    assert main(["timeline", "--out", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()


def test_alerts_default_and_transitions(tmp_path, capsys):
    assert main(["alerts"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert {r["name"] for r in doc["rules"]} >= {"merge-ratio-floor"}
    assert doc["evaluations"] > 0
    out_path = tmp_path / "alerts.jsonl"
    assert main(["alerts", "--transitions", "--out", str(out_path)]) == 0
    lines = out_path.read_text().strip().splitlines()
    assert lines
    assert all(json.loads(line)["rule"] for line in lines)


def test_bench_metrics_out(tmp_path):
    bench_out = tmp_path / "bench.json"
    prom_out = tmp_path / "bench.prom"
    assert main(["bench", "--quick", "--reps", "1", "--only", "checksum",
                 "--out", str(bench_out), "--metrics-out", str(prom_out)]) == 0
    text = prom_out.read_text()
    assert 'px_bench_pkts_per_sec{bench="checksum"}' in text
    assert 'px_bench_reps{bench="checksum"} 1' in text


def test_flight_summary(capsys):
    assert main(["flight", "--summary"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["name"] == "world0"
    assert summary["sources"] == {"spans": True, "tracer": True,
                                  "timeline": True, "alerts": True}
    assert summary["counts"]["span"] > 0


def test_flight_dump_windowed_and_compact(tmp_path, capsys):
    out_path = tmp_path / "flight.json"
    assert main(["flight", "--since", "0.9", "--until", "0.9",
                 "--kind", "trace", "--out", str(out_path)]) == 0
    assert "written to" in capsys.readouterr().out
    dump = json.loads(out_path.read_text())
    assert dump["schema"] == "repro-flight/1"
    assert dump["window"] == {"since": 0.9, "until": 0.9}
    assert dump["entries"]
    assert all(e["kind"] == "trace" and e["time"] == 0.9
               for e in dump["entries"])


def test_flight_dump_is_byte_identical(tmp_path):
    paths = [tmp_path / "a.json", tmp_path / "b.json"]
    for path in paths:
        assert main(["flight", "--seed", "3", "--out", str(path)]) == 0
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_trace_since_filters_by_sim_time(capsys):
    assert main(["trace", "--since", "0.9", "--jsonl"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines
    assert all(json.loads(line)["time"] >= 0.9 for line in lines)
    capsys.readouterr()
    assert main(["trace", "--jsonl"]) == 0
    all_lines = capsys.readouterr().out.strip().splitlines()
    assert len(all_lines) > len(lines)


def test_incident_shard_loss_verb(tmp_path, capsys):
    out_path = tmp_path / "incident.json"
    assert main(["incident", "--trigger", "shard-loss",
                 "--out", str(out_path)]) == 0
    assert "written to" in capsys.readouterr().out
    bundle = json.loads(out_path.read_text())
    assert bundle["schema"] == "repro-incident/1"
    assert bundle["trigger"]["kind"] == "shard-loss"
    assert bundle["trace"]["flows"] and bundle["trace"]["consistent"]
