"""CLI coverage for `repro metrics` and `repro trace`."""

import json

from repro.cli import main


def test_metrics_prometheus_to_stdout(capsys):
    assert main(["metrics", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE px_gateway_rx_packets_total counter" in out
    assert 'px_gateway_rx_packets_total{gateway="pxgw"}' in out
    assert "# TYPE px_gateway_inbound_packet_bytes histogram" in out


def test_metrics_json_to_file(tmp_path, capsys):
    out_path = tmp_path / "metrics.json"
    assert main(["metrics", "--format", "json", "--out", str(out_path)]) == 0
    assert "written to" in capsys.readouterr().out
    dump = json.loads(out_path.read_text())
    names = {entry["name"] for entry in dump["series"]}
    assert "px_upf_uplink_packets_total" in names
    assert "px_pmtud_probes_sent_total" in names


def test_trace_summary(capsys):
    assert main(["trace", "--summary"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["recorded"] > 0
    assert summary["kinds"]["worker-swap"] == 1


def test_trace_filtered_events_are_json_lines(capsys):
    assert main(["trace", "--kind", "pmtud-report", "--limit", "5"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines
    for line in lines:
        event = json.loads(line)
        assert event["kind"] == "pmtud-report"
        assert event["pmtu"] == 1500


def test_bench_metrics_out(tmp_path):
    bench_out = tmp_path / "bench.json"
    prom_out = tmp_path / "bench.prom"
    assert main(["bench", "--quick", "--reps", "1", "--only", "checksum",
                 "--out", str(bench_out), "--metrics-out", str(prom_out)]) == 0
    text = prom_out.read_text()
    assert 'px_bench_pkts_per_sec{bench="checksum"}' in text
    assert 'px_bench_reps{bench="checksum"} 1' in text
