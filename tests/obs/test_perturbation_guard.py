"""Perturbation guard: observing a world must not change the world.

Spans are attached to every chaos world and a timeline can be bolted on
top — neither may move a single packet.  The goldens in
``chaos_digests_pr5.json`` were captured *before* the span/timeline
instrumentation landed, so a digest mismatch here means the observability
layer leaked into the datapath (touched an RNG, reordered events, or
perturbed scheduling).  The PR 3 gateway-trace fingerprint is re-pinned
under full instrumentation for the same reason.
"""

import hashlib
import json
import os

import pytest

from repro.chaos.scenarios import corpus, run_scenario
from repro.obs import TelemetryTimeline
from repro.sim.trace import PacketTrace

_HERE = os.path.dirname(__file__)


def _golden():
    with open(os.path.join(_HERE, "chaos_digests_pr5.json")) as handle:
        return json.load(handle)


def _attach_timeline(world):
    """Bolt a 50 ms scraper onto a chaos world (spans are already on)."""
    world._timeline = TelemetryTimeline(
        world.topo.sim, world.obs.registry, interval=0.05
    ).start()


@pytest.mark.parametrize(
    "name,seed",
    [pytest.param(name, seed, id=f"{name}:{seed}") for name, seed in corpus()],
)
def test_observed_digest_matches_preobservability_golden(name, seed):
    golden = _golden()
    result = run_scenario(name, seed, mutate=_attach_timeline)
    assert result.digest == golden[f"{name}:{seed}"]


def test_timeline_actually_scraped_during_the_guard():
    # The guard above is vacuous if the timeline never ticks; prove the
    # scraper ran while the digest stayed put.
    golden = _golden()
    captured = {}

    def attach(world):
        _attach_timeline(world)
        captured["world"] = world

    result = run_scenario("mixed", 115, mutate=attach)
    assert result.digest == golden["mixed:115"]
    timeline = captured["world"]._timeline
    assert timeline.ticks > 10
    spans = captured["world"].obs.spans
    assert spans.opened > 0 and spans.balanced


def test_trace_fingerprint_unmoved_under_full_instrumentation():
    # Same golden as tests/perf/test_determinism_guard.py, but with the
    # span tracker AND a live timeline attached: the pinned per-packet
    # gateway trace must stay byte-identical.
    with open(os.path.join(_HERE, "..", "perf",
                           "trace_fingerprint_pr3.json")) as handle:
        golden = json.load(handle)
    profile, _, seed = golden["scenario"].partition(":")

    trace = PacketTrace()

    def attach(world):
        world.gateway.trace = trace
        _attach_timeline(world)

    result = run_scenario(profile, int(seed), mutate=attach)
    assert result.digest == golden["digest"]

    digest = hashlib.sha256()
    for entry in trace.entries:
        digest.update(
            repr(
                (entry.time, entry.point, entry.event, entry.length, entry.summary)
            ).encode()
        )
    assert len(trace.entries) == golden["entries"]
    assert digest.hexdigest() == golden["sha256"]
