"""Unit tests for repro.obs.alerts: deterministic SLO alerting."""

import json

import pytest

from repro.obs.alerts import (
    FIRING,
    OK,
    PENDING,
    AlertEngine,
    AlertRule,
    default_alert_rules,
)


def test_rule_validation():
    with pytest.raises(ValueError):
        AlertRule(name="x", series="s", op="!!", threshold=1)
    with pytest.raises(ValueError):
        AlertRule(name="x", series="s", op=">", threshold=1, kind="nope")
    with pytest.raises(ValueError):
        AlertRule(name="x", series="s", op=">", threshold=1, kind="ratio")
    with pytest.raises(ValueError):
        AlertRule(name="x", series="s", op=">", threshold=1, for_duration=-1)


def test_engine_rejects_duplicate_names():
    rule = AlertRule(name="dup", series="s", op=">", threshold=1)
    with pytest.raises(ValueError):
        AlertEngine((rule, rule))


def test_value_kind_and_absent_series_reads_zero():
    rule = AlertRule(name="v", series="s", op=">=", threshold=5)
    assert rule.value({"s": 7.0}, {}, None) == 7.0
    assert rule.value({}, {}, None) == 0.0
    assert rule.breached(7.0)
    assert not rule.breached(4.0)
    assert not rule.breached(None)


def test_sum_kind_collapses_label_dimension():
    rule = AlertRule(name="s", series="px_q_depth", op=">", threshold=10, kind="sum")
    snapshot = {
        'px_q_depth{queue="0"}': 4.0,
        'px_q_depth{queue="1"}': 8.0,
        "other": 100.0,
    }
    assert rule.value(snapshot, {}, None) == 12.0


def test_rate_kind_needs_window():
    rule = AlertRule(name="r", series="s", op=">", threshold=1, kind="rate")
    assert rule.value({}, {"s": 5.0}, None) is None
    assert rule.value({}, {"s": 5.0}, 0.5) == 10.0
    assert rule.value({}, {}, 0.5) == 0.0


def test_ratio_kind_no_data_never_breaches():
    rule = AlertRule(name="q", series="num", denominator="den",
                     op="<", threshold=0.5, kind="ratio")
    assert rule.value({"num": 1.0, "den": 4.0}, {}, None) == 0.25
    assert rule.value({"num": 1.0}, {}, None) is None
    assert not rule.breached(None)


def test_immediate_fire_and_resolve():
    engine = AlertEngine((
        AlertRule(name="hot", series="s", op=">", threshold=10),
    ))
    engine.evaluate(1.0, {"s": 20.0})
    assert engine.state("hot") == FIRING
    assert engine.firing() == ["hot"]
    engine.evaluate(2.0, {"s": 5.0})
    assert engine.state("hot") == OK
    assert [t["to"] for t in engine.transitions] == [FIRING, OK]
    assert len(engine.firings()) == 1
    assert len(engine.resolutions()) == 1
    assert engine.resolutions()[0]["time"] == 2.0


def test_for_duration_state_machine():
    engine = AlertEngine((
        AlertRule(name="dwell", series="s", op=">=", threshold=1, for_duration=0.3),
    ))
    engine.evaluate(0.0, {"s": 1.0})
    assert engine.state("dwell") == PENDING
    engine.evaluate(0.2, {"s": 1.0})          # dwell 0.2 < 0.3: still pending
    assert engine.state("dwell") == PENDING
    engine.evaluate(0.3, {"s": 1.0})          # dwell reached: fires
    assert engine.state("dwell") == FIRING
    engine.evaluate(0.4, {"s": 0.0})          # resolves
    assert engine.state("dwell") == OK
    assert [t["to"] for t in engine.transitions] == [PENDING, FIRING, OK]


def test_pending_clears_without_firing():
    engine = AlertEngine((
        AlertRule(name="dwell", series="s", op=">=", threshold=1, for_duration=1.0),
    ))
    engine.evaluate(0.0, {"s": 1.0})
    engine.evaluate(0.1, {"s": 0.0})
    assert engine.state("dwell") == OK
    assert engine.firings() == []
    # a fresh breach restarts the dwell clock
    engine.evaluate(0.2, {"s": 1.0})
    engine.evaluate(0.3, {"s": 1.0})
    assert engine.state("dwell") == PENDING


def test_transition_log_is_complete_and_stamped():
    engine = AlertEngine((
        AlertRule(name="a", series="s", op=">", threshold=0),
    ))
    engine.evaluate(5.0, {"s": 3.0})
    (t,) = engine.transitions
    assert t == {"time": 5.0, "rule": "a", "from": OK, "to": FIRING, "value": 3.0}


def test_to_json_deterministic():
    def build():
        engine = AlertEngine(default_alert_rules())
        engine.evaluate(0.1, {'px_health_state{gateway="pxgw"}': 2.0})
        engine.evaluate(0.2, {'px_health_state{gateway="pxgw"}': 2.0})
        engine.evaluate(0.3, {})
        return engine

    one, two = build().to_json(), build().to_json()
    assert one == two
    doc = json.loads(one)
    assert doc["evaluations"] == 3
    assert {r["name"] for r in doc["rules"]} == {
        "merge-ratio-floor", "drop-rate-ceiling",
        "health-degraded-dwell", "pmtu-cache-miss-spike",
    }
    dwell = [t for t in doc["transitions"] if t["rule"] == "health-degraded-dwell"]
    assert [t["to"] for t in dwell] == [PENDING, FIRING, OK]


def test_for_duration_boundary_equality_fires():
    # The dwell comparison is >=: reaching the boundary exactly fires,
    # one tick short does not.
    engine = AlertEngine((
        AlertRule(name="edge", series="s", op=">=", threshold=1,
                  for_duration=0.25),
    ))
    engine.evaluate(1.00, {"s": 1.0})
    assert engine.state("edge") == PENDING
    engine.evaluate(1.2499999, {"s": 1.0})     # strictly below the dwell
    assert engine.state("edge") == PENDING
    engine.evaluate(1.25, {"s": 1.0})          # now - since == for_duration
    assert engine.state("edge") == FIRING
    fired = [t for t in engine.transitions if t["to"] == FIRING]
    assert fired[0]["time"] == 1.25


def test_flapping_sequence_keeps_every_transition():
    # ok → pending → firing → resolved → pending → firing: six states,
    # five recorded transitions, nothing coalesced or lost.
    engine = AlertEngine((
        AlertRule(name="flap", series="s", op=">=", threshold=1,
                  for_duration=0.1),
    ))
    engine.evaluate(0.0, {"s": 1.0})           # ok -> pending
    engine.evaluate(0.1, {"s": 1.0})           # pending -> firing
    engine.evaluate(0.2, {"s": 0.0})           # firing -> ok (resolved)
    engine.evaluate(0.3, {"s": 1.0})           # ok -> pending (fresh dwell)
    assert engine.state("flap") == PENDING     # dwell restarted, not resumed
    engine.evaluate(0.4, {"s": 1.0})           # pending -> firing
    assert [(t["from"], t["to"]) for t in engine.transitions] == [
        (OK, PENDING), (PENDING, FIRING), (FIRING, OK),
        (OK, PENDING), (PENDING, FIRING),
    ]
    assert len(engine.firings()) == 2
    assert len(engine.resolutions()) == 1

    history = engine.history()
    assert [e["edge"] for e in history] == [
        "pending", "fired", "resolved", "pending", "fired",
    ]
    assert [e["seq"] for e in history] == [0, 1, 2, 3, 4]
    assert [e["time"] for e in history] == [0.0, 0.1, 0.2, 0.3, 0.4]


def test_history_filters_by_rule_and_keeps_global_seq():
    engine = AlertEngine((
        AlertRule(name="a", series="s", op=">", threshold=0),
        AlertRule(name="b", series="t", op=">", threshold=0),
    ))
    engine.evaluate(1.0, {"s": 1.0, "t": 1.0})
    engine.evaluate(2.0, {"s": 0.0, "t": 1.0})
    only_a = engine.history(rule="a")
    assert [e["rule"] for e in only_a] == ["a", "a"]
    # Sequence numbers index the global log, so cross-rule ordering is
    # reconstructible from a filtered view.
    assert [e["seq"] for e in only_a] == [0, 2]
    assert [e["edge"] for e in only_a] == ["fired", "resolved"]


def test_states_at_and_fired_by_replay_the_log():
    engine = AlertEngine((
        AlertRule(name="hot", series="s", op=">", threshold=10),
    ))
    engine.evaluate(1.0, {"s": 20.0})          # fires
    engine.evaluate(2.0, {"s": 5.0})           # resolves
    assert engine.states_at(0.5) == {"hot": OK}
    assert engine.states_at(1.0) == {"hot": FIRING}
    assert engine.firing_at(1.5) == ["hot"]
    assert engine.firing_at(2.0) == []
    # fired_by keeps citing the transient breach after it resolved.
    assert engine.fired_by(0.9) == []
    assert engine.fired_by(2.5) == ["hot"]


def test_to_json_includes_history():
    engine = AlertEngine((
        AlertRule(name="a", series="s", op=">", threshold=0),
    ))
    engine.evaluate(1.0, {"s": 1.0})
    doc = json.loads(engine.to_json())
    assert doc["history"] == [{
        "time": 1.0, "rule": "a", "from": OK, "to": FIRING,
        "value": 1.0, "seq": 0, "edge": "fired",
    }]


def test_default_rules_are_labelled_per_gateway():
    rules = default_alert_rules(gateway="alpha")
    assert all('{gateway="alpha"}' in r.series for r in rules)
    ratio = next(r for r in rules if r.kind == "ratio")
    assert 'gateway="alpha"' in ratio.denominator
