"""Unit tests for the bounded flow tracer."""

import json

import pytest

from repro.obs import FlowTracer


def test_record_preserves_order_and_fields():
    tracer = FlowTracer()
    tracer.record(0.1, "ingress", worker=0, bytes=1500)
    tracer.record(0.2, "egress", worker=0, bytes=9000)
    events = tracer.events()
    assert events == [
        {"time": 0.1, "kind": "ingress", "worker": 0, "bytes": 1500},
        {"time": 0.2, "kind": "egress", "worker": 0, "bytes": 9000},
    ]
    assert tracer.events(kind="egress") == events[1:]
    assert tracer.kinds() == {"egress": 1, "ingress": 1}


def test_ring_keeps_newest_and_counts_shed_events():
    tracer = FlowTracer(capacity=3)
    for index in range(10):
        tracer.record(float(index), "tick", n=index)
    assert len(tracer) == 3
    assert tracer.recorded == 10
    assert tracer.dropped == 7
    assert [event["n"] for event in tracer.events()] == [7, 8, 9]


def test_sequence_is_a_comparable_fingerprint():
    a, b = FlowTracer(), FlowTracer()
    for tracer in (a, b):
        tracer.record(0.5, "merge", bytes=2, spliced=True)
    assert a.sequence() == b.sequence()
    b.record(0.6, "merge", bytes=3, spliced=False)
    assert a.sequence() != b.sequence()


def test_sequence_handles_list_valued_fields():
    # Regression: events carrying list/dict values (e.g. a caravan's
    # inner datagram sizes) used to make sequence() unhashable.
    a, b = FlowTracer(), FlowTracer()
    for tracer in (a, b):
        tracer.record(0.1, "caravan-built", sizes=[500, 500, 600],
                      meta={"flows": [1, 2]})
    seq = a.sequence()
    assert seq == b.sequence()
    assert len({tuple(seq)}) == 1  # hashable end to end
    b.record(0.2, "caravan-built", sizes=[700])
    assert a.sequence() != b.sequence()


def test_clear_keeps_the_recorded_total():
    tracer = FlowTracer()
    tracer.record(0.0, "x")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.recorded == 1


def test_to_json_serializes():
    tracer = FlowTracer(capacity=2)
    tracer.record(0.0, "x", flow="1.2.3.4:80")
    dump = json.loads(json.dumps(tracer.to_json()))
    assert dump["capacity"] == 2
    assert dump["events"][0]["flow"] == "1.2.3.4:80"


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlowTracer(capacity=0)
