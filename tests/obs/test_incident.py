"""Incident bundles: schema, trigger validation, determinism, and the
stock trigger scenarios (PR 10)."""

import pytest

from repro.core.config import GatewayConfig
from repro.obs.incident import (
    TRIGGER_KINDS,
    alert_trigger_bundle,
    build_incident_bundle,
    bundle_to_json,
    config_digest,
    rollback_trigger_bundle,
)


def test_unknown_trigger_kind_rejected():
    with pytest.raises(ValueError):
        build_incident_bundle("solar-flare", 1.0)


def test_minimal_bundle_schema():
    bundle = build_incident_bundle("shard-drain", 2.0, window=0.5,
                                   detail={"shard": 1})
    assert bundle["schema"] == "repro-incident/1"
    assert bundle["trigger"] == {"kind": "shard-drain", "time": 2.0,
                                 "detail": {"shard": 1}}
    assert bundle["window"] == {"since": 1.5, "until": 2.0}
    assert bundle["flight"] == {} and bundle["alerts"] == {}
    assert bundle["trace"]["consistent"] is True
    assert bundle["config"] is None


def test_config_digest_is_stable_and_sensitive():
    base = GatewayConfig(imtu=9000, emtu=1500)
    assert config_digest(base) == config_digest(GatewayConfig(imtu=9000,
                                                              emtu=1500))
    other = config_digest(GatewayConfig(imtu=8900, emtu=1500))
    assert other["sha256"] != config_digest(base)["sha256"]
    assert config_digest(base)["config"]["imtu"] == 9000


def test_alert_trigger_bundle_cites_the_firing_rule():
    bundle = alert_trigger_bundle(seed=0)
    assert bundle["trigger"]["kind"] == "alert-firing"
    assert "merge-ratio-floor" in bundle["trigger"]["detail"]["rules"]
    cited = bundle["alerts"]["world"]
    assert "merge-ratio-floor" in cited["fired"]
    assert any(entry["rule"] == "merge-ratio-floor"
               and entry["to"] == "firing" for entry in cited["history"])
    # The window is cut at the firing instant: nothing cited is later.
    at = bundle["trigger"]["time"]
    assert all(entry["time"] <= at for entry in cited["history"])
    assert bundle["config"]["config"]["delayed_merge"] is False
    assert bundle["metrics"]


def test_alert_trigger_bundle_is_same_seed_identical():
    assert bundle_to_json(alert_trigger_bundle(seed=0)) == \
        bundle_to_json(alert_trigger_bundle(seed=0))


def test_rollback_bundle_embedded_in_canary_report():
    bundle = rollback_trigger_bundle(seed=0)
    assert bundle["trigger"]["kind"] == "canary-rollback"
    detail = bundle["trigger"]["detail"]
    assert detail["rollback"]["zero_loss"] is True
    assert detail["stage"] is not None
    # Differential evidence: both twins' engines are cited, and the
    # candidate fired rules the baseline did not.
    assert set(bundle["alerts"]) == {"baseline", "candidate"}
    extra = (set(bundle["alerts"]["candidate"]["fired"])
             - set(bundle["alerts"]["baseline"]["fired"]))
    assert extra
    # The rollback takeover stamped adoption hops on the moved flows.
    assert bundle["trace"]["flows"]
    assert all(any(h["kind"] == "adoption" for h in j["hops"])
               for j in bundle["trace"]["journeys"])
    assert bundle["trace"]["consistent"]
    assert bundle["guardrails"]


def test_promoted_canary_carries_no_bundle():
    from repro.ops.incidents import run_incident

    report = run_incident("benign-candidate", seed=0)
    assert report["verdict"] == "PROMOTED"
    assert report["incident_bundle"] is None


def test_trigger_kinds_cover_the_issue_surface():
    assert set(TRIGGER_KINDS) == {"alert-firing", "canary-rollback",
                                  "shard-loss", "chaos-oracle",
                                  "shard-drain"}
