"""The observed world: coverage, determinism, and oracle reconciliation.

The acceptance criteria for the observability layer live here: one
seeded end-to-end run must export a rich multi-layer series set, and
two same-seed runs must be byte-identical.
"""

import pytest

from repro.chaos import run_scenario
from repro.chaos.oracle import InvariantOracle
from repro.obs import run_observed_world

#: Every instrumented layer must contribute at least one series.
_LAYER_PREFIXES = (
    "px_gateway_",
    "px_worker_",
    "px_health_",      # resilience: health monitor
    "px_pmtu_cache_",  # resilience: PMTU clamp cache
    "px_failover_",    # resilience: checkpoints + takeover
    "px_nic_",
    "px_upf_",
    "px_pmtud_",
)


@pytest.fixture(scope="module")
def world():
    """One seed-0 run shared by every read-only test in this module."""
    return run_observed_world(seed=0)


def test_world_exports_every_layer_with_depth(world):
    snapshot = world.obs.registry.snapshot()
    names = {key.split("{")[0] for key in snapshot}
    for prefix in _LAYER_PREFIXES:
        assert any(name.startswith(prefix) for name in names), prefix
    # The headline acceptance bar: a rich export, not a token one.
    assert world.obs.registry.series_count() >= 25
    # The world actually moved traffic through every layer.
    assert snapshot['px_gateway_rx_packets_total{gateway="pxgw"}'] > 0
    assert snapshot['px_gateway_merged_packets_total{gateway="pxgw"}'] > 0
    assert snapshot['px_gateway_split_segments_total{gateway="pxgw"}'] > 0
    assert snapshot['px_gateway_caravans_built_total{gateway="pxgw"}'] > 0
    assert snapshot['px_gateway_caravans_opened_total{gateway="pxgw"}'] > 0
    assert snapshot['px_failover_takeovers_total{gateway="pxgw"}'] == 1
    assert snapshot['px_pmtud_probes_sent_total{agent="fpmtud"}'] == 1
    assert snapshot['px_pmtud_last_pmtu_bytes{agent="fpmtud"}'] == 1500
    assert sum(value for key, value in snapshot.items()
               if key.startswith("px_nic_rss_steered_total")) > 0
    assert sum(value for key, value in snapshot.items()
               if key.startswith("px_upf_rule_hits_total")) == 40
    # The transfers completed and the PMTU probe resolved.
    assert world.notes["downloaded"] == 48_000
    assert world.notes["uploaded"] == 24_000
    assert world.notes["datagrams_in"] == 24
    assert world.notes["datagrams_out"] == 12
    assert world.notes["pmtu"] == 1500


def test_world_traces_the_whole_flow_lifecycle(world):
    kinds = world.obs.tracer.kinds()
    for kind in ("ingress", "classify", "merge", "split", "egress", "flush",
                 "caravan-built", "caravan-opened", "worker-swap",
                 "failover-takeover", "pmtud-probe", "pmtud-report"):
        assert kinds.get(kind, 0) > 0, kind
    assert world.obs.tracer.dropped == 0


def test_world_registry_reconciles_with_the_chaos_oracle(world):
    oracle = InvariantOracle()
    oracle.check_registry(world.obs.registry, world.gateway)
    assert oracle.ok, oracle.violations


def test_same_seed_runs_are_byte_identical():
    first = run_observed_world(seed=11)
    second = run_observed_world(seed=11)
    assert (first.obs.registry.to_prometheus_text()
            == second.obs.registry.to_prometheus_text())
    assert first.obs.tracer.sequence() == second.obs.tracer.sequence()


def test_different_seeds_share_the_series_catalog(world):
    # Seeds vary timing, not topology: the *set* of exported series must
    # be stable or dashboards break between runs.
    other = run_observed_world(seed=5)
    assert set(world.obs.registry.snapshot()) == set(other.obs.registry.snapshot())


def test_reconciliation_catches_a_lying_collector():
    # A fresh world: this test deliberately corrupts its registry.
    world = run_observed_world(seed=0)
    registry = world.obs.registry
    # A collector registered *after* the gateway's overrides its series
    # at the next scrape — the oracle must notice the disagreement.
    registry.register_collector(
        lambda reg: reg.counter(
            "px_gateway_rx_packets_total", gateway="pxgw"
        ).set_total(1)
    )
    oracle = InvariantOracle()
    oracle.check_registry(registry, world.gateway)
    assert not oracle.ok
    assert any("registry-reconciliation" in v for v in oracle.violations)


def test_chaos_scenarios_run_the_registry_check():
    result = run_scenario("mixed", seed=7)
    assert result.ok, result.violations
