"""Multi-window burn-rate SLO rules on the AlertEngine (PR 10)."""

import pytest

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    burn_rate_rules,
    default_burn_rules,
)


def _engine(budget=1e-3):
    return AlertEngine(burn_rate_rules("err", "total", budget=budget))


def test_burn_rule_validation():
    with pytest.raises(ValueError):
        AlertRule(name="x", kind="burn", series="err", op=">=",
                  threshold=1.0)  # no denominator
    with pytest.raises(ValueError):
        AlertRule(name="x", kind="burn", series="err", op=">=",
                  threshold=1.0, denominator="total",
                  fast_window=5.0, slow_window=1.0)  # fast > slow
    with pytest.raises(ValueError):
        AlertRule(name="x", kind="burn", series="err", op=">=",
                  threshold=1.0, denominator="total",
                  fast_window=1.0, slow_window=5.0, budget=0.0)


def test_factory_shapes():
    fast, slow = burn_rate_rules("err", "total", budget=1e-3)
    assert (fast.threshold, fast.fast_window, fast.slow_window) == \
        (14.4, 1.0, 5.0)
    assert (slow.threshold, slow.fast_window, slow.slow_window) == \
        (6.0, 5.0, 60.0)
    names = {rule.name for rule in default_burn_rules("pxgw")}
    assert names == {"error-budget-burn-fast", "error-budget-burn-slow"}


def test_single_scrape_has_no_burn_signal():
    engine = _engine()
    engine.evaluate(0.0, {"err": 0.0, "total": 100.0})
    assert engine.states_at(0.0) == {"error-budget-burn-fast": "ok",
                                     "error-budget-burn-slow": "ok"}


def test_sustained_burn_fires_both_windows():
    engine = _engine(budget=1e-3)
    # 10% error ratio = 100x a 0.1% budget — far over both thresholds.
    for step in range(8):
        now = float(step)
        total = 1000.0 * (step + 1)
        engine.evaluate(now, {"err": 0.10 * total, "total": total})
    fired = engine.fired_by(8.0)
    assert fired == ["error-budget-burn-fast", "error-budget-burn-slow"]
    # The observed value is min(fast burn, slow burn) = 100.
    firing = [t for t in engine.history() if t["to"] == "firing"]
    assert all(abs(t["value"] - 100.0) < 1e-9 for t in firing)


def test_moderate_burn_trips_only_the_slow_rule():
    """A burn between the two thresholds (here 10x the budget: over the
    slow rule's 6.0, under the fast rule's 14.4) pages only the
    slow-burn rule — the classic multi-window discrimination."""
    engine = _engine(budget=1e-3)
    # 1% errors = 10x budget: over the slow rule's 6.0, under 14.4.
    for step in range(8):
        now = float(step)
        total = 1000.0 * (step + 1)
        engine.evaluate(now, {"err": 0.01 * total, "total": total})
    assert engine.fired_by(8.0) == ["error-budget-burn-slow"]


def test_burn_resolves_when_errors_stop():
    engine = _engine(budget=1e-3)
    for step in range(4):
        total = 1000.0 * (step + 1)
        engine.evaluate(float(step), {"err": 0.10 * total, "total": total})
    assert engine.firing_at(3.0)
    # Errors flatline while traffic continues: burn over both windows
    # decays to zero and the alerts resolve.
    errors = 0.10 * 4000.0
    for step in range(4, 70):
        engine.evaluate(float(step),
                        {"err": errors, "total": 1000.0 * (step + 1)})
    assert engine.firing_at(69.0) == []
    resolved = [t for t in engine.history() if t["to"] == "ok"]
    assert resolved


def test_no_denominator_progress_means_no_data():
    engine = _engine()
    engine.evaluate(0.0, {"err": 0.0, "total": 100.0})
    engine.evaluate(1.0, {"err": 50.0, "total": 100.0})  # total frozen
    assert engine.firing_at(1.0) == []


def test_burn_history_is_bounded_to_the_slow_window():
    engine = _engine()
    for step in range(200):
        total = float(step + 1)
        engine.evaluate(float(step), {"err": 0.0, "total": total})
    # Lookback is the slow rule's 60s window: one far-baseline scrape
    # at or before now-60 plus everything after.
    assert len(engine._scrapes) <= 63


def test_value_rules_ignore_burn_fields():
    rule = AlertRule(name="plain", kind="value", series="x", op=">",
                     threshold=1.0)
    payload = rule.to_dict()
    assert "fast_window" not in payload and "budget" not in payload
    burn = burn_rate_rules("err", "total")[0].to_dict()
    assert burn["fast_window"] == 1.0 and burn["budget"] == 1e-3
