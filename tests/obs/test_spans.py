"""Unit tests for repro.obs.spans: the lifecycle-span tracker."""

import json

import pytest

from repro.obs.spans import (
    CARAVAN_BATCH_WAIT_SECONDS,
    GATEWAY_RESIDENCY_SECONDS,
    LATENCY_BUCKETS,
    LATENCY_METRICS,
    MERGE_WAIT_SECONDS,
    PROBE_RTT_SECONDS,
    Span,
    SpanTracker,
)


def test_latency_bucket_ladder_is_sorted_and_positive():
    assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
    assert all(b > 0 for b in LATENCY_BUCKETS)
    assert len(set(LATENCY_BUCKETS)) == len(LATENCY_BUCKETS)


def test_latency_metrics_catalog():
    assert set(LATENCY_METRICS) == {
        GATEWAY_RESIDENCY_SECONDS,
        MERGE_WAIT_SECONDS,
        CARAVAN_BATCH_WAIT_SECONDS,
        PROBE_RTT_SECONDS,
    }


def test_open_close_balance_and_duration():
    tracker = SpanTracker()
    sid = tracker.open(1.0, kind="packet", stage="forward")
    assert tracker.open_count() == 1
    assert tracker.balance() == {"opened": 1, "closed": 0, "dropped": 0, "open": 1}
    assert tracker.balanced
    tracker.close(sid, 1.25)
    assert tracker.balance() == {"opened": 1, "closed": 1, "dropped": 0, "open": 0}
    assert tracker.balanced
    (span,) = tracker.finished()
    assert span.sid == sid
    assert span.outcome == "egress"
    assert span.duration == pytest.approx(0.25)


def test_drop_counts_separately_from_close():
    tracker = SpanTracker()
    sid = tracker.open(0.0)
    tracker.drop(sid, 0.1, "no-route")
    assert tracker.dropped == 1
    assert tracker.closed == 0
    assert tracker.balanced
    (span,) = tracker.finished()
    assert span.outcome == "no-route"


def test_close_unknown_sid_is_anomaly_not_crash():
    tracker = SpanTracker()
    tracker.close(999, 1.0)
    tracker.drop(998, 1.0, "x")
    assert tracker.anomalies == 2
    assert tracker.balanced


def test_sync_fast_path_records_residency():
    tracker = SpanTracker()
    tracker.sync(2.0, 2.5, "mss")
    assert tracker.balance() == {"opened": 1, "closed": 1, "dropped": 0, "open": 0}
    assert tracker.latency_values(GATEWAY_RESIDENCY_SECONDS) == {0.5: 1}
    (span,) = tracker.finished()
    assert span.stage == "mss"
    assert span.outcome == "egress"


def test_sync_drop_fast_path():
    tracker = SpanTracker()
    tracker.sync_drop(1.0, 1.0, "malformed-caravan")
    assert tracker.dropped == 1
    assert tracker.balanced
    (span,) = tracker.finished()
    assert span.outcome == "malformed-caravan"
    # drops don't pollute the residency histogram
    assert tracker.latency_count(GATEWAY_RESIDENCY_SECONDS) == 0


def test_derived_children_are_born_closed_with_parents():
    tracker = SpanTracker()
    parent = tracker.open(0.0)
    tracker.derived((parent,), "split-segment", 0.5, count=3)
    assert tracker.opened == 4
    assert tracker.closed == 3
    kids = tracker.finished("split-segment")
    assert len(kids) == 3
    assert all(k.parents == (parent,) for k in kids)
    assert all(k.duration == 0.0 for k in kids)


def test_merge_fifo_full_consume_closes_parents():
    tracker = SpanTracker()
    a = tracker.open(0.0)
    b = tracker.open(0.001)
    tracker.merge_enqueue("flow", a, 1000, 0.0)
    tracker.merge_enqueue("flow", b, 500, 0.001)
    assert tracker.pending_merge_bytes() == 1500
    parents = tracker.merge_consume("flow", 1500, 0.002)
    assert parents == (a, b)
    assert tracker.pending_merge_bytes() == 0
    assert tracker.open_count() == 0
    merged = {s.sid: s for s in tracker.finished()}
    assert merged[a].outcome == "merged"
    assert merged[b].outcome == "merged"
    # merge-wait recorded once per drained parent
    assert tracker.latency_values(MERGE_WAIT_SECONDS) == {0.002: 1, 0.001: 1}
    # residency recorded too (ingress -> merged egress)
    assert tracker.latency_count(GATEWAY_RESIDENCY_SECONDS) == 2


def test_merge_fifo_partial_consume_keeps_head_open():
    tracker = SpanTracker()
    a = tracker.open(0.0)
    tracker.merge_enqueue("flow", a, 1000, 0.0)
    parents = tracker.merge_consume("flow", 400, 0.01)
    # the segment carries part of a's bytes: a is a parent but stays open
    assert parents == (a,)
    assert tracker.open_count() == 1
    assert tracker.pending_merge_bytes() == 600
    # the remainder drains later and only then does a close
    parents = tracker.merge_consume("flow", 600, 0.02)
    assert parents == (a,)
    assert tracker.open_count() == 0
    assert tracker.anomalies == 0


def test_merge_fifo_underrun_is_anomaly():
    tracker = SpanTracker()
    parents = tracker.merge_consume("flow", 100, 1.0)
    assert parents == ()
    assert tracker.anomalies == 1


def test_caravan_fifo_consume_and_batch_outcomes():
    tracker = SpanTracker()
    sids = [tracker.open(0.1 * i, kind="datagram") for i in range(3)]
    for i, sid in enumerate(sids):
        tracker.caravan_enqueue("cflow", sid, 0.1 * i)
    assert tracker.pending_caravan_datagrams() == 3
    parents = tracker.caravan_consume("cflow", 2, 0.5, outcome="bundled")
    assert parents == tuple(sids[:2])
    assert tracker.pending_caravan_datagrams() == 1
    parents = tracker.caravan_consume("cflow", 1, 0.6, outcome="flushed")
    assert parents == (sids[2],)
    done = {s.sid: s for s in tracker.finished()}
    assert done[sids[0]].outcome == "bundled"
    assert done[sids[2]].outcome == "flushed"
    assert tracker.anomalies == 0
    assert tracker.balanced


def test_caravan_fifo_underrun_is_anomaly():
    tracker = SpanTracker()
    assert tracker.caravan_consume("flow", 2, 1.0) == ()
    # one anomaly per under-run event (the loop stops at the empty FIFO)
    assert tracker.anomalies == 1


def test_flush_fifos_settles_everything():
    tracker = SpanTracker()
    a = tracker.open(0.0)
    b = tracker.open(0.0, kind="datagram")
    tracker.merge_enqueue("f1", a, 700, 0.0)
    tracker.caravan_enqueue("f2", b, 0.0)
    settled = tracker.flush_fifos(1.0, outcome="failover")
    assert settled == 2
    assert tracker.pending_merge_bytes() == 0
    assert tracker.pending_caravan_datagrams() == 0
    assert tracker.open_count() == 0
    assert tracker.balanced
    outcomes = {s.outcome for s in tracker.finished()}
    assert outcomes == {"failover"}


def test_observe_and_median():
    tracker = SpanTracker()
    assert tracker.latency_median(PROBE_RTT_SECONDS) is None
    for value in (0.03, 0.01, 0.02):
        tracker.observe(PROBE_RTT_SECONDS, value)
    assert tracker.latency_count(PROBE_RTT_SECONDS) == 3
    assert tracker.latency_median(PROBE_RTT_SECONDS) == 0.02
    # even count -> lower of the two middles
    tracker.observe(PROBE_RTT_SECONDS, 0.04)
    assert tracker.latency_median(PROBE_RTT_SECONDS) == 0.02
    # repeated values collapse into one map entry but count fully
    tracker.observe(PROBE_RTT_SECONDS, 0.04)
    tracker.observe(PROBE_RTT_SECONDS, 0.04)
    assert tracker.latency_values(PROBE_RTT_SECONDS)[0.04] == 3
    assert tracker.latency_median(PROBE_RTT_SECONDS) == 0.03


def test_unknown_metric_raises():
    tracker = SpanTracker()
    with pytest.raises(KeyError):
        tracker.observe("px_not_a_metric", 1.0)


def test_capacity_ring_sheds_but_counters_stay_exact():
    tracker = SpanTracker(capacity=4)
    for i in range(10):
        tracker.sync(float(i), float(i) + 0.5, "forward")
    assert tracker.closed == 10
    assert len(tracker.finished()) == 4
    assert tracker.shed == 6
    assert tracker.balanced
    # latency counters are unaffected by ring shedding
    assert tracker.latency_count(GATEWAY_RESIDENCY_SECONDS) == 10


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        SpanTracker(capacity=0)


def test_kinds_and_stages_views():
    tracker = SpanTracker()
    tracker.sync(0.0, 0.1, "forward")
    tracker.sync(0.0, 0.1, "forward")
    tracker.sync(0.0, 0.1, "hairpin")
    tracker.derived((), "caravan", 0.2)
    assert tracker.kinds() == {"caravan": 1, "packet": 3}
    assert tracker.stages() == {"forward": 2, "hairpin": 1}


def test_to_json_is_deterministic_and_parseable():
    def build():
        tracker = SpanTracker()
        a = tracker.open(0.0)
        tracker.merge_enqueue("f", a, 100, 0.0)
        tracker.derived(tracker.merge_consume("f", 100, 0.01), "merged", 0.01)
        tracker.sync(0.02, 0.03, "forward")
        tracker.observe(PROBE_RTT_SECONDS, 0.02)
        return tracker

    one, two = build().to_json(), build().to_json()
    assert one == two
    doc = json.loads(one)
    assert doc["balance"] == {"opened": 3, "closed": 3, "dropped": 0, "open": 0}
    assert doc["anomalies"] == 0
    assert set(doc["latency"]) == set(LATENCY_METRICS)
    assert doc["latency"][PROBE_RTT_SECONDS] == {"count": 1, "sum": 0.02}
    assert len(doc["spans"]) == 3
    # limit keeps the newest spans
    limited = json.loads(build().to_json(limit=1))
    assert len(limited["spans"]) == 1
    assert limited["spans"][0]["stage"] == "forward"


def test_to_jsonl_one_span_per_line():
    tracker = SpanTracker()
    tracker.sync(0.0, 0.1, "forward")
    tracker.sync(0.2, 0.3, "hairpin")
    lines = tracker.to_jsonl().splitlines()
    assert len(lines) == 2
    assert [json.loads(l)["stage"] for l in lines] == ["forward", "hairpin"]
    assert len(tracker.to_jsonl(limit=1).splitlines()) == 1


def test_span_to_dict_roundtrip():
    span = Span(7, "merged", 1.0, 2.0, "egress", (1, 2), None)
    doc = span.to_dict()
    assert doc == {
        "sid": 7, "kind": "merged", "opened_at": 1.0, "closed_at": 2.0,
        "outcome": "egress", "stage": None, "parents": [1, 2],
    }
