"""The black-box flight recorder: bounded rings, merged windows,
byte-deterministic dumps (PR 10)."""

import json

from repro.obs import FlightRecorder, run_observed_world
from repro.obs.spans import SpanTracker


def test_marks_and_samples_are_bounded():
    rec = FlightRecorder(name="tiny", capacity=4)
    for i in range(10):
        rec.note(float(i), "tick", index=i)
        rec.add_sample(float(i), {"x": float(i)})
    assert rec.marks_recorded == 10
    assert rec.samples_recorded == 10
    counts = rec.counts()
    assert counts["mark"] == 4
    assert counts["metrics"] == 4
    dump = rec.to_dict()
    assert dump["shed"] == {"marks": 6, "samples": 6}
    # The ring keeps the newest entries.
    times = [e["time"] for e in dump["entries"] if e["kind"] == "mark"]
    assert times == [6.0, 7.0, 8.0, 9.0]


def test_window_merges_sources_in_time_order():
    rec = FlightRecorder(name="merge")
    spans = SpanTracker()
    sid = spans.open(0.5, kind="packet", stage="forward")
    spans.close(sid, 1.5)
    rec.wire(spans=spans)
    rec.note(1.0, "mid")
    rec.add_sample(2.0, {"y": 1.0})
    entries = rec.window()
    assert [e["time"] for e in entries] == [1.0, 1.5, 2.0]
    assert [e["kind"] for e in entries] == ["mark", "span", "metrics"]
    # Inclusive [since, until] filtering plus kind selection.
    assert [e["kind"] for e in rec.window(since=1.5)] == ["span", "metrics"]
    assert [e["kind"] for e in rec.window(until=1.5)] == ["mark", "span"]
    assert [e["kind"] for e in rec.window(kinds=("mark",))] == ["mark"]


def test_observed_world_flight_is_wired_and_deterministic():
    one = run_observed_world(seed=3)
    two = run_observed_world(seed=3)
    assert one.flight.sources == {
        "spans": True, "tracer": True, "timeline": True, "alerts": True,
    }
    counts = one.flight.counts()
    assert counts["span"] > 0 and counts["trace"] > 0
    assert counts["metrics"] > 0
    assert one.flight.to_json() == two.flight.to_json()


def test_to_json_is_compact_and_sorted():
    rec = FlightRecorder(name="fmt")
    rec.note(1.0, "only", b=2, a=1)
    text = rec.to_json()
    assert ": " not in text and ", " not in text
    payload = json.loads(text)
    assert payload["schema"] == "repro-flight/1"
    assert payload["entries"][0]["a"] == 1


def test_world_flight_window_brackets_the_takeover():
    world = run_observed_world(seed=0)
    swap = [e for e in world.flight.window(since=0.9, until=0.9,
                                           kinds=("trace",))
            if e["event"]["kind"] == "failover-takeover"]
    assert len(swap) == 1
