"""Unit tests for the metrics registry: instruments, export, snapshot."""

import json

import pytest

from repro.obs import LOG2_BUCKETS, MetricsRegistry, default_registry


class TestInstruments:
    def test_counter_increments_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("px_test_events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_set_total_mirrors_a_live_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("px_test_events_total")
        counter.set_total(17)
        counter.set_total(17)  # idempotent: a re-scrape must not double
        assert counter.value == 17
        with pytest.raises(ValueError):
            counter.set_total(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("px_test_depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_series_are_get_or_create_per_label_set(self):
        registry = MetricsRegistry()
        a = registry.counter("px_test_total", direction="in")
        b = registry.counter("px_test_total", direction="in")
        c = registry.counter("px_test_total", direction="out")
        assert a is b
        assert a is not c
        assert registry.series_count() == 2

    def test_type_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("px_test_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("px_test_total")

    def test_name_and_label_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("px bad name")
        with pytest.raises(ValueError):
            registry.counter("px_ok_total", **{"bad-label": "x"})


class TestHistogram:
    def test_default_bounds_are_log2(self):
        assert LOG2_BUCKETS[0] == 1
        assert LOG2_BUCKETS[-1] == 128 * 1024
        assert all(b == 2 * a for a, b in zip(LOG2_BUCKETS, LOG2_BUCKETS[1:]))

    def test_observe_buckets_and_overflow(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("px_test_bytes", bounds=(10, 100))
        histogram.observe(5)
        histogram.observe(10)  # boundary counts into its own bucket (le)
        histogram.observe(50, weight=3)
        histogram.observe(1000)
        assert histogram.bucket_counts == [2, 3, 1]
        assert histogram.count == 6
        assert histogram.sum == 5 + 10 + 150 + 1000

    def test_load_is_idempotent(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("px_test_bytes", bounds=(10, 100))
        for _ in range(2):  # a second scrape must not double-count
            histogram.load({5: 2, 50: 1})
        assert histogram.count == 3
        assert histogram.sum == 60

    def test_samples_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("px_test_bytes", bounds=(10, 100))
        histogram.observe(5)
        histogram.observe(1000)
        flat = {name + str(dict(labels)): value
                for name, labels, value in histogram.samples()}
        assert flat["px_test_bytes_bucket{'le': '10'}"] == 1
        assert flat["px_test_bytes_bucket{'le': '100'}"] == 1
        assert flat["px_test_bytes_bucket{'le': '+Inf'}"] == 2
        assert flat["px_test_bytes_count{}"] == 2

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("px_test_bytes", bounds=(100, 10))


class TestExport:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("px_b_total", "B help", direction="out").inc(2)
        registry.counter("px_b_total", direction="in").inc(1)
        registry.gauge("px_a_depth", "A help").set(1.5)
        return registry

    def test_prometheus_text_is_sorted_and_typed(self):
        text = self.build().to_prometheus_text()
        lines = text.splitlines()
        assert lines == [
            "# HELP px_a_depth A help",
            "# TYPE px_a_depth gauge",
            "px_a_depth 1.5",
            "# HELP px_b_total B help",
            "# TYPE px_b_total counter",
            'px_b_total{direction="in"} 1',
            'px_b_total{direction="out"} 2',
        ]
        assert text.endswith("\n")

    def test_collectors_run_at_scrape_time(self):
        registry = MetricsRegistry()
        live = {"count": 0}
        registry.register_collector(
            lambda reg: reg.counter("px_live_total").set_total(live["count"])
        )
        live["count"] = 3
        assert "px_live_total 3" in registry.to_prometheus_text()
        live["count"] = 9
        assert registry.snapshot()["px_live_total"] == 9

    def test_to_json_round_trips(self):
        registry = self.build()
        registry.histogram("px_c_bytes", bounds=(8,)).observe(4)
        dump = json.loads(json.dumps(registry.to_json()))
        by_name = {}
        for entry in dump["series"]:
            by_name.setdefault(entry["name"], []).append(entry)
        assert by_name["px_a_depth"][0]["value"] == 1.5
        assert {e["labels"]["direction"] for e in by_name["px_b_total"]} == \
            {"in", "out"}
        histogram = by_name["px_c_bytes"][0]
        assert histogram["buckets"] == {"8": 1}
        assert histogram["count"] == 1

    def test_snapshot_diff_reports_only_movement(self):
        registry = self.build()
        before = registry.snapshot()
        registry.counter("px_b_total", direction="in").inc(5)
        registry.gauge("px_new_depth").set(2)
        after = registry.snapshot()
        assert MetricsRegistry.diff(before, after) == {
            'px_b_total{direction="in"}': 5,
            "px_new_depth": 2,
        }

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("px_q_total", flow='a"b').inc()
        assert 'flow="a\\"b"' in registry.to_prometheus_text()


def test_default_registry_is_a_singleton():
    assert default_registry() is default_registry()
    assert isinstance(default_registry(), MetricsRegistry)
