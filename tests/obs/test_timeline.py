"""Unit tests for repro.obs.timeline: in-sim periodic scrapes."""

import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import TelemetryTimeline
from repro.sim import Simulator


def _world():
    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("px_ticks_total", gateway="t")
    return sim, registry, counter


def test_interval_validation():
    sim, registry, _ = _world()
    with pytest.raises(ValueError):
        TelemetryTimeline(sim, registry, interval=0)
    with pytest.raises(ValueError):
        TelemetryTimeline(sim, registry, interval=0.1, max_samples=0)


def test_ticks_record_windowed_deltas():
    sim, registry, counter = _world()
    timeline = TelemetryTimeline(sim, registry, interval=0.1).start()
    # bump the counter between scrape windows
    sim.schedule_at(0.05, counter.inc, 3)
    sim.schedule_at(0.15, counter.inc, 2)
    sim.run(until=0.35)
    timeline.stop()
    assert timeline.ticks == 3
    key = 'px_ticks_total{gateway="t"}'
    deltas = [s["deltas"].get(key, 0.0) for s in timeline.samples]
    assert deltas == [3.0, 2.0, 0.0]
    # samples are stamped in sim time at the scrape instant
    assert [s["time"] for s in timeline.samples] == pytest.approx([0.1, 0.2, 0.3])


def test_start_is_idempotent_and_stop_cancels():
    sim, registry, _ = _world()
    timeline = TelemetryTimeline(sim, registry, interval=0.1)
    assert not timeline.running
    timeline.start()
    handle_pending = sim.pending()
    timeline.start()  # no second tick scheduled
    assert sim.pending() == handle_pending
    assert timeline.running
    timeline.stop()
    assert not timeline.running
    sim.run(until=1.0)
    assert timeline.ticks == 0


def test_max_samples_sheds_oldest():
    sim, registry, counter = _world()
    timeline = TelemetryTimeline(sim, registry, interval=0.1, max_samples=2).start()
    sim.schedule_at(0.05, counter.inc)
    sim.run(until=0.55)
    timeline.stop()
    assert timeline.ticks == 5
    assert len(timeline.samples) == 2
    assert timeline.shed == 3
    assert [s["time"] for s in timeline.samples] == pytest.approx([0.4, 0.5])


def test_rates_totals_series_views():
    sim, registry, counter = _world()
    timeline = TelemetryTimeline(sim, registry, interval=0.1).start()
    sim.schedule_at(0.05, counter.inc, 5)
    sim.schedule_at(0.25, counter.inc, 1)
    sim.run(until=0.35)
    timeline.stop()
    key = 'px_ticks_total{gateway="t"}'
    assert timeline.totals() == {key: 6.0}
    assert timeline.rates(timeline.samples[0]) == {key: pytest.approx(50.0)}
    assert timeline.series(key) == [
        (pytest.approx(0.1), 5.0), (pytest.approx(0.3), 1.0)
    ]


def test_alert_engine_is_fed_each_tick():
    from repro.obs.alerts import AlertEngine, AlertRule

    sim, registry, counter = _world()
    engine = AlertEngine((
        AlertRule(name="tick-rate", kind="rate",
                  series='px_ticks_total{gateway="t"}', op=">", threshold=10.0),
    ))
    timeline = TelemetryTimeline(
        sim, registry, interval=0.1, alerts=engine
    ).start()
    sim.schedule_at(0.05, counter.inc, 1000)
    sim.run(until=0.25)
    timeline.stop()
    assert engine.evaluations == timeline.ticks == 2
    assert [t["to"] for t in engine.transitions] == ["firing", "ok"]


def test_exports_are_deterministic_and_jsonl_shaped():
    def build():
        sim, registry, counter = _world()
        timeline = TelemetryTimeline(sim, registry, interval=0.1).start()
        sim.schedule_at(0.05, counter.inc, 7)
        sim.run(until=0.25)
        timeline.stop()
        return timeline

    one, two = build(), build()
    assert one.to_json() == two.to_json()
    assert one.to_json(indent=2) == two.to_json(indent=2)
    assert one.to_jsonl() == two.to_jsonl()
    doc = json.loads(one.to_json())
    assert doc["interval"] == 0.1
    assert doc["ticks"] == 2
    assert len(doc["samples"]) == 2
    lines = one.to_jsonl().splitlines()
    assert json.loads(lines[0])["timeline"]["ticks"] == 2
    assert len(lines) == 1 + 2
