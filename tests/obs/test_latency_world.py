"""The latency-aware observability stack end to end.

The PR 5 acceptance criteria live here: the observed world must carry
balanced spans through merge/split/caravan causality, the timeline and
alert engine must be byte-deterministic across same-seed runs, and the
F-PMTUD probe-RTT histogram must demonstrate the paper's one-RTT claim
against PLPMTUD on the same path.
"""

import json

import pytest

from repro.obs import run_observed_world
from repro.obs.spans import (
    CARAVAN_BATCH_WAIT_SECONDS,
    GATEWAY_RESIDENCY_SECONDS,
    MERGE_WAIT_SECONDS,
    PROBE_RTT_SECONDS,
    SpanTracker,
)


@pytest.fixture(scope="module")
def world():
    """One seed-0 run shared by every read-only test in this module."""
    return run_observed_world(seed=0)


def test_world_spans_balance_with_zero_anomalies(world):
    spans = world.obs.spans
    assert spans.balanced, spans.balance()
    assert spans.anomalies == 0
    assert spans.open_count() == 0  # every packet settled by end of run
    assert spans.pending_merge_bytes() == 0
    assert spans.pending_caravan_datagrams() == 0
    assert spans.opened > 100  # a real workload, not a token one


def test_world_spans_cover_every_causality_shape(world):
    kinds = world.obs.spans.kinds()
    # merge N->1, split 1->N, caravan bundle + open, probe lifecycle
    for kind in ("merged", "split-segment", "caravan", "datagram", "probe"):
        assert kinds.get(kind, 0) > 0, kinds
    stages = world.obs.spans.stages()
    for stage in ("mss", "hairpin", "forward", "split", "caravan-open"):
        assert stages.get(stage, 0) > 0, stages
    # merged/caravan children must point at real parents
    for span in world.obs.spans.finished("merged"):
        assert span.parents
    for span in world.obs.spans.finished("caravan"):
        assert span.parents


def test_world_records_every_latency_metric(world):
    spans = world.obs.spans
    assert spans.latency_count(GATEWAY_RESIDENCY_SECONDS) > 50
    assert spans.latency_count(MERGE_WAIT_SECONDS) > 10
    assert spans.latency_count(CARAVAN_BATCH_WAIT_SECONDS) > 0
    assert spans.latency_count(PROBE_RTT_SECONDS) == 1
    # merge waits are bounded by the engine's flush timeout ballpark
    assert all(0 <= v <= 1.0 for v in spans.latency_values(MERGE_WAIT_SECONDS))


def test_world_spans_surface_in_the_registry(world):
    snapshot = world.obs.registry.snapshot()
    assert snapshot["px_spans_opened_total"] == world.obs.spans.opened
    assert snapshot["px_spans_closed_total"] == world.obs.spans.closed
    assert snapshot["px_spans_anomalies_total"] == 0
    assert snapshot["px_spans_open"] == 0
    text = world.obs.registry.to_prometheus_text()
    for metric in (GATEWAY_RESIDENCY_SECONDS, MERGE_WAIT_SECONDS,
                   CARAVAN_BATCH_WAIT_SECONDS, PROBE_RTT_SECONDS):
        assert f"{metric}_bucket" in text, metric
        assert f"{metric}_count" in text, metric


def test_world_timeline_scrapes_in_sim_time(world):
    timeline = world.timeline
    assert timeline is not None and not timeline.running
    assert timeline.ticks > 20  # 3 s horizon at 0.05 s interval
    times = [s["time"] for s in timeline.samples]
    assert times == sorted(times)
    # traffic ramp shows up as deltas in the early windows
    totals = timeline.totals()
    assert totals.get('px_gateway_rx_packets_total{gateway="pxgw"}', 0) > 0


def test_world_alerts_ride_the_timeline(world):
    alerts = world.alerts
    assert alerts is not None
    assert alerts.evaluations == world.timeline.ticks
    # before the transfers start the merge ratio is floored: the rule
    # goes pending, then resolves once merging begins.
    merge = [t for t in alerts.transitions if t["rule"] == "merge-ratio-floor"]
    assert [t["to"] for t in merge[:2]] == ["pending", "ok"]
    assert alerts.states()["merge-ratio-floor"] == "ok"


def test_same_seed_exports_are_byte_identical():
    first = run_observed_world(seed=11)
    second = run_observed_world(seed=11)
    assert first.obs.spans.to_json() == second.obs.spans.to_json()
    assert first.obs.spans.to_jsonl() == second.obs.spans.to_jsonl()
    assert first.timeline.to_json() == second.timeline.to_json()
    assert first.timeline.to_jsonl() == second.timeline.to_jsonl()
    assert first.alerts.to_json() == second.alerts.to_json()
    # and the timeline JSON actually parses into the documented shape
    doc = json.loads(first.timeline.to_json())
    assert set(doc) == {"interval", "started_at", "ticks", "shed", "samples"}


def test_fpmtud_probe_rtt_is_one_path_rtt():
    """The paper's headline: F-PMTUD learns the PMTU in ~one RTT.

    Same path as the ``repro pmtud`` CLI race: 3 links at 5 ms
    propagation each (30 ms RTT), bottleneck 1400 B, ICMP-blackholed
    routers.  The probe-RTT histogram must show the F-PMTUD probe
    resolving in one path RTT (plus serialization), while PLPMTUD's
    search on the identical path takes orders of magnitude longer.
    """
    from repro.net import Topology
    from repro.pmtud import FPmtudDaemon, FPmtudProber, Plpmtud, ProbeEchoDaemon

    topo = Topology()
    client = topo.add_host("client")
    server = topo.add_host("server")
    routers = [topo.add_router(f"r{i}", icmp_blackhole=True) for i in range(2)]
    chain = [client] + routers + [server]
    delay = 0.005
    for index, mtu in enumerate([9000, 1400, 9000]):
        topo.link(chain[index], chain[index + 1], mtu=mtu, delay=delay)
    topo.build_routes()
    FPmtudDaemon(server)
    ProbeEchoDaemon(server)

    outcomes = {}
    prober = FPmtudProber(client)
    prober.spans = SpanTracker()
    prober.probe(server.ip, 9000, lambda r: outcomes.__setitem__("f", r))
    Plpmtud(client).discover(server.ip, 9000,
                             lambda r: outcomes.__setitem__("plp", r))
    topo.run(until=600.0)

    path_rtt = 2 * 3 * delay  # 30 ms of propagation, both directions
    assert prober.spans.latency_count(PROBE_RTT_SECONDS) == 1
    median = prober.spans.latency_median(PROBE_RTT_SECONDS)
    # one RTT plus sub-millisecond serialization — not a search
    assert path_rtt <= median <= path_rtt * 1.05
    # the probe span closed as a report, not a timeout
    (span,) = prober.spans.finished("probe")
    assert span.outcome == "report"
    # PLPMTUD on the same path: strictly (vastly) slower
    assert outcomes["plp"].elapsed > median * 100
    assert outcomes["plp"].probes_sent > 1


def test_probe_timeout_drops_the_span():
    """A blackholed probe must settle its span as dropped, not leak it."""
    from repro.net import Topology
    from repro.pmtud import FPmtudProber

    topo = Topology()
    client = topo.add_host("client")
    server = topo.add_host("server")
    topo.link(client, server, mtu=1500, delay=0.005)
    topo.build_routes()
    # No FPmtudDaemon on the server: the probe report never comes back.
    outcomes = {}
    prober = FPmtudProber(client)
    prober.spans = SpanTracker()
    prober.probe(server.ip, 1500, lambda r: outcomes.__setitem__("f", r))
    topo.run(until=60.0)
    spans = prober.spans
    assert spans.balanced
    assert spans.open_count() == 0
    done = spans.finished("probe")
    assert done and all(s.outcome == "timeout" for s in done)
    assert spans.latency_count(PROBE_RTT_SECONDS) == 0
