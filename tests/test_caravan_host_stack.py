"""Tests for the caravan-aware host stack (§4.1's modified end host)."""

import pytest

from repro.core import GatewayConfig, PXGateway, is_caravan
from repro.net import Topology
from repro.workload import SealedDatagramCodec


def bnetwork_topology():
    topo = Topology()
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    gateway = PXGateway(topo.sim, "pxgw",
                        config=GatewayConfig(elephant_threshold_packets=2))
    topo.add_node(gateway)
    topo.link(inside, gateway, mtu=9000)
    topo.link(gateway, outside, mtu=1500)
    topo.build_routes()
    gateway.mark_internal(gateway.interfaces[0])
    return topo, inside, outside, gateway


class TestCaravanRxStack:
    def test_transparent_decode_delivers_individual_datagrams(self):
        topo, inside, outside, gateway = bnetwork_topology()
        inside.enable_caravan_stack(imtu=9000)
        received = []
        inside.on_udp(5001, lambda packet, host: received.append(packet))
        for _ in range(18):
            outside.send_udp(inside.ip, 6000, 5001, b"\xcd" * 1200)
        topo.run(until=1.0)
        # The app sees 18 plain datagrams, never a caravan.
        assert len(received) == 18
        assert not any(is_caravan(p) for p in received)
        assert all(p.payload == b"\xcd" * 1200 for p in received)
        assert gateway.stats.caravans_built > 0

    def test_unmodified_host_sees_raw_caravans(self):
        topo, inside, outside, gateway = bnetwork_topology()
        received = []
        inside.on_udp(5001, lambda packet, host: received.append(packet))
        for _ in range(18):
            outside.send_udp(inside.ip, 6000, 5001, b"\xcd" * 1200)
        topo.run(until=1.0)
        assert any(is_caravan(p) for p in received)

    def test_validation(self):
        topo, inside, _outside, _gateway = bnetwork_topology()
        with pytest.raises(ValueError):
            inside.enable_caravan_stack(imtu=100)


class TestCaravanTxStack:
    def test_bulk_send_bundles_to_imtu(self):
        topo, inside, outside, gateway = bnetwork_topology()
        inside.enable_caravan_stack(imtu=9000)
        received = []
        outside.on_udp(7001, lambda packet, host: received.append(packet))
        datagrams = [bytes([i]) * 1200 for i in range(24)]
        sent_packets = inside.send_udp_bulk(outside.ip, 7000, 7001, datagrams)
        topo.run(until=1.0)
        # 7 x 1208 B records fit an 8972 B budget: 24 datagrams -> 4 caravans.
        assert sent_packets == 4
        # The gateway opened the caravans at the egress; the legacy
        # receiver got every original datagram back.
        assert len(received) == 24
        assert [p.payload for p in received] == datagrams
        assert gateway.stats.caravans_opened == 4

    def test_bulk_send_without_caravan_stack_sends_loose(self):
        topo, inside, outside, _gateway = bnetwork_topology()
        received = []
        outside.on_udp(7001, lambda packet, host: received.append(packet))
        sent = inside.send_udp_bulk(outside.ip, 7000, 7001, [b"a" * 500] * 5)
        topo.run(until=1.0)
        assert sent == 5
        assert len(received) == 5

    def test_sealed_datagrams_survive_the_full_tx_path(self):
        topo, inside, outside, gateway = bnetwork_topology()
        inside.enable_caravan_stack(imtu=9000)
        tx = SealedDatagramCodec(b"stack-key-0001")
        rx = SealedDatagramCodec(b"stack-key-0001")
        opened = []
        outside.on_udp(7001, lambda packet, host: opened.append(rx.open(packet.payload)))
        inside.send_udp_bulk(outside.ip, 7000, 7001,
                             [tx.seal(bytes([i]) * 800) for i in range(12)])
        topo.run(until=1.0)
        assert len(opened) == 12
        assert all(result is not None for result in opened)

    def test_oversized_single_datagram_sent_alone(self):
        topo, inside, outside, _gateway = bnetwork_topology()
        inside.enable_caravan_stack(imtu=9000)
        received = []
        outside.on_udp(7001, lambda packet, host: received.append(packet))
        # 8000 B datagram: bundles alone, crosses as fragments, reassembles.
        sent = inside.send_udp_bulk(outside.ip, 7000, 7001, [b"z" * 8000])
        topo.run(until=1.0)
        assert sent == 1
        assert len(received) == 1
        assert received[0].payload == b"z" * 8000
