"""Tests for pcap export, netem extensions, and router ICMP rate limiting."""

import io
import random
import struct

import pytest

from repro.net import Topology
from repro.packet import Packet, build_udp
from repro.sim import GilbertElliott, Netem
from repro.sim.pcap import InterfaceTap, PcapWriter


class TestPcapWriter:
    def test_global_header(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        data = buffer.getvalue()
        magic, major, minor, _tz, _sig, snaplen, linktype = struct.unpack(
            "!IHHiIII", data[:24]
        )
        assert magic == 0xA1B2C3D4
        assert (major, minor) == (2, 4)
        assert linktype == 101  # raw IP

    def test_packet_record_roundtrip(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        packet = build_udp("10.0.0.1", "10.0.0.2", 1, 2, payload=b"capture me")
        writer.write(packet, timestamp=1.5)
        data = buffer.getvalue()[24:]
        sec, usec, incl, orig = struct.unpack("!IIII", data[:16])
        assert (sec, usec) == (1, 500000)
        assert incl == orig == packet.total_len
        # The captured bytes parse back into the same packet.
        parsed = Packet.from_bytes(data[16 : 16 + incl])
        assert parsed.payload == b"capture me"

    def test_microsecond_rounding_carry(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(build_udp("1.1.1.1", "2.2.2.2", 1, 2), timestamp=2.9999999)
        sec, usec, _i, _o = struct.unpack("!IIII", buffer.getvalue()[24:40])
        assert sec == 3 and usec == 0

    def test_interface_tap_captures_both_directions(self):
        topo = Topology()
        a = topo.add_host("a")
        b = topo.add_host("b")
        topo.link(a, b)
        topo.build_routes()
        b.on_udp(9, lambda packet, host: host.send_udp(packet.ip.src, 9, 1, b"pong"))
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        tap = InterfaceTap(a.interfaces[0], writer)
        a.send_udp(b.ip, 1, 9, b"ping")
        topo.run()
        assert writer.packets_written == 2  # ping out, pong in
        tap.detach()
        a.send_udp(b.ip, 1, 9, b"after detach")
        topo.run()
        assert writer.packets_written == 2

    def test_tap_direction_filter(self):
        topo = Topology()
        a = topo.add_host("a")
        b = topo.add_host("b")
        topo.link(a, b)
        topo.build_routes()
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        InterfaceTap(a.interfaces[0], writer, direction="tx")
        a.send_udp(b.ip, 1, 9, b"only tx")
        topo.run()
        assert writer.packets_written == 1
        with pytest.raises(ValueError):
            InterfaceTap(a.interfaces[0], writer, direction="sideways")


class TestNetemExtensions:
    def test_reorder_delays_some_packets(self):
        netem = Netem(reorder=1.0, reorder_extra=0.01)
        rng = random.Random(1)
        drop, extra = netem.impair(rng)
        assert not drop
        assert extra >= 0.01

    def test_gilbert_elliott_burstiness(self):
        channel = GilbertElliott(p_good_to_bad=0.01, p_bad_to_good=0.2,
                                 loss_good=0.0, loss_bad=1.0)
        rng = random.Random(3)
        drops = [channel.drop(rng) for _ in range(20000)]
        # Losses happen, and they cluster: count runs of consecutive drops.
        assert 0.01 < sum(drops) / len(drops) < 0.15
        runs = []
        current = 0
        for dropped in drops:
            if dropped:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert max(runs) >= 3  # bursts, not isolated drops

    def test_stationary_loss_rate(self):
        channel = GilbertElliott(p_good_to_bad=0.01, p_bad_to_good=0.99,
                                 loss_good=0.0, loss_bad=0.5)
        expected = channel.stationary_loss_rate
        rng = random.Random(5)
        measured = sum(channel.drop(rng) for _ in range(200_000)) / 200_000
        assert measured == pytest.approx(expected, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=1.5)
        with pytest.raises(ValueError):
            Netem(reorder=2.0)

    def test_burst_loss_in_netem(self):
        netem = Netem(burst_loss=GilbertElliott(p_good_to_bad=1.0, p_bad_to_good=0.0,
                                                loss_bad=1.0))
        rng = random.Random(0)
        results = [netem.impair(rng)[0] for _ in range(10)]
        assert all(results)  # permanently bad channel drops everything


class TestIcmpRateLimit:
    def make_path(self, **router_kwargs):
        topo = Topology()
        client = topo.add_host("client")
        server = topo.add_host("server")
        router = topo.add_router("router", **router_kwargs)
        topo.link(client, router, mtu=9000)
        topo.link(router, server, mtu=1500)
        topo.build_routes()
        return topo, client, server, router

    def test_unlimited_router_answers_every_df_probe(self):
        topo, client, server, router = self.make_path()
        errors = []
        client.on_icmp(lambda packet, message: errors.append(message))
        for _ in range(10):
            client.send_udp(server.ip, 1, 9, b"z" * 8000, dont_fragment=True)
        topo.run(until=1.0)
        assert len(errors) == 10

    def test_rate_limited_router_suppresses(self):
        topo, client, server, router = self.make_path(icmp_rate_limit=2.0)
        errors = []
        client.on_icmp(lambda packet, message: errors.append(message))
        for _ in range(10):  # all within far less than a second
            client.send_udp(server.ip, 1, 9, b"z" * 8000, dont_fragment=True)
        topo.run(until=0.1)
        assert len(errors) == 1
        assert router.icmp_suppressed == 9

    def test_limit_recovers_over_time(self):
        topo, client, server, router = self.make_path(icmp_rate_limit=2.0)
        errors = []
        client.on_icmp(lambda packet, message: errors.append(message))

        def probe():
            client.send_udp(server.ip, 1, 9, b"z" * 8000, dont_fragment=True)

        for index in range(4):
            topo.sim.schedule(index * 1.0, probe)
        topo.run(until=10.0)
        assert len(errors) == 4  # 1/s is under the 2/s limit
