"""Tests for the TCP stack: handshake, transfer, loss recovery, PMTUD, CC."""

import pytest

from repro.net import Topology
from repro.sim import Netem
from repro.tcpstack import (
    Cubic,
    Reno,
    TCPConnection,
    TCPListener,
    TCPState,
    congestion_avoidance_ramp_bps,
    mathis_throughput_bps,
    padhye_throughput_bps,
    slow_start_rtts_to_rate,
)


def line_topology(mtu=1500, bandwidth=10e9, delay=1e-4, netem=None, blackhole=False,
                  right_mtu=None):
    topo = Topology()
    client = topo.add_host("client")
    server = topo.add_host("server")
    router = topo.add_router("router", icmp_blackhole=blackhole)
    topo.link(client, router, mtu=mtu, bandwidth_bps=bandwidth, delay=delay, netem=netem)
    topo.link(router, server, mtu=right_mtu if right_mtu else mtu,
              bandwidth_bps=bandwidth, delay=delay)
    topo.build_routes()
    return topo, client, server


def open_connection(topo, client, server, client_mss=1460, server_mss=1460, **kwargs):
    listener = TCPListener(server, 80, mss=server_mss)
    conn = TCPConnection(client, 40000, server.ip, 80, mss=client_mss, **kwargs)
    conn.connect()
    topo.run(until=topo.sim.now + 1.0)
    return conn, listener


class TestHandshake:
    def test_three_way_handshake_establishes_both_sides(self):
        topo, client, server = line_topology()
        conn, listener = open_connection(topo, client, server)
        assert conn.state == TCPState.ESTABLISHED
        assert listener.connections[0].state == TCPState.ESTABLISHED

    def test_mss_negotiated_to_minimum(self):
        topo, client, server = line_topology(mtu=9000)
        conn, listener = open_connection(topo, client, server,
                                         client_mss=8960, server_mss=1460)
        assert conn.send_mss == 1460
        assert listener.connections[0].send_mss == 1460

    def test_window_scale_negotiated(self):
        topo, client, server = line_topology()
        conn, listener = open_connection(topo, client, server)
        assert conn.peer_wscale == TCPConnection.WINDOW_SCALE
        assert conn.effective_peer_window == 65535 << TCPConnection.WINDOW_SCALE

    def test_syn_retransmitted_on_loss(self):
        # 100% loss initially is impossible to converge, so drop via tiny queue:
        topo = Topology()
        client = topo.add_host("client")
        server = topo.add_host("server")
        router = topo.add_router("router")
        netem = Netem(loss=0.9)
        topo.link(client, router, netem=netem)
        topo.link(router, server)
        topo.build_routes()
        listener = TCPListener(server, 80)
        conn = TCPConnection(client, 40000, server.ip, 80)
        conn.connect()
        topo.run(until=130.0)  # room for exponential backoff under 90 % loss
        assert conn.timeouts > 0
        assert conn.state == TCPState.ESTABLISHED  # eventually makes it


class TestBulkTransfer:
    def test_all_bytes_delivered(self):
        topo, client, server = line_topology()
        conn, listener = open_connection(topo, client, server)
        conn.send_bulk(1_000_000)
        topo.run(until=topo.sim.now + 5.0)
        assert listener.connections[0].bytes_delivered == 1_000_000
        assert conn.bytes_acked == 1_000_000

    def test_segments_bounded_by_mss(self):
        topo, client, server = line_topology(mtu=9000)
        conn, listener = open_connection(topo, client, server,
                                         client_mss=8960, server_mss=8960)
        conn.send_bulk(100_000)
        topo.run(until=topo.sim.now + 2.0)
        assert listener.connections[0].bytes_delivered == 100_000

    def test_larger_mss_fewer_packets(self):
        results = {}
        for mss, mtu in ((1460, 1500), (8960, 9000)):
            topo, client, server = line_topology(mtu=mtu)
            conn, listener = open_connection(topo, client, server,
                                             client_mss=mss, server_mss=mss)
            conn.send_bulk(500_000)
            topo.run(until=topo.sim.now + 3.0)
            assert listener.connections[0].bytes_delivered == 500_000
            results[mss] = server.rx_packets
        assert results[8960] < results[1460] / 3

    def test_throughput_reported(self):
        topo, client, server = line_topology()
        conn, listener = open_connection(topo, client, server)
        conn.send_bulk(2_000_000)
        start = topo.sim.now
        topo.run(until=start + 5.0)
        server_conn = listener.connections[0]
        assert server_conn.throughput_bps(5.0) > 1e6


class TestLossRecovery:
    def test_recovers_from_random_loss(self):
        topo, client, server = line_topology(netem=Netem(loss=0.01), delay=1e-3)
        conn, listener = open_connection(topo, client, server)
        conn.send_bulk(500_000)
        topo.run(until=topo.sim.now + 30.0)
        assert listener.connections[0].bytes_delivered == 500_000
        assert conn.retransmits > 0

    def test_loss_reduces_cwnd(self):
        topo, client, server = line_topology(netem=Netem(loss=0.02), delay=1e-3)
        conn, _listener = open_connection(topo, client, server)
        conn.send_bulk(500_000)
        topo.run(until=topo.sim.now + 30.0)
        cwnds = [value for _t, value in conn.cwnd_trace]
        assert any(cwnds[i + 1] < cwnds[i] for i in range(len(cwnds) - 1))

    def test_lossless_transfer_has_no_retransmits(self):
        topo, client, server = line_topology()
        conn, listener = open_connection(topo, client, server)
        conn.send_bulk(1_000_000)
        topo.run(until=topo.sim.now + 5.0)
        assert conn.retransmits == 0


class TestClassicalPmtud:
    def test_sender_adapts_mss_on_icmp(self):
        # 9000 MTU on the client side, 1500 beyond the router.
        topo, client, server = line_topology(mtu=9000, right_mtu=1500)
        conn, listener = open_connection(topo, client, server,
                                         client_mss=8960, server_mss=8960)
        conn.send_bulk(200_000)
        topo.run(until=topo.sim.now + 10.0)
        assert conn.send_mss == 1460  # adapted to the bottleneck
        assert listener.connections[0].bytes_delivered == 200_000

    def test_blackhole_stalls_transfer(self):
        topo, client, server = line_topology(mtu=9000, right_mtu=1500, blackhole=True)
        conn, listener = open_connection(topo, client, server,
                                         client_mss=8960, server_mss=8960)
        conn.send_bulk(200_000)
        topo.run(until=topo.sim.now + 20.0)
        # No ICMP arrives; large segments vanish silently.
        assert conn.send_mss == 8960
        assert listener.connections[0].bytes_delivered < 200_000
        assert conn.timeouts > 0


class TestCongestionControl:
    def test_reno_slow_start_doubles_per_window(self):
        cc = Reno(mss=1000)
        initial = cc.cwnd
        # ACK a full window's worth of data.
        for _ in range(int(initial / 1000)):
            cc.on_ack(1000)
        assert cc.cwnd == pytest.approx(2 * initial)

    def test_reno_congestion_avoidance_adds_mss_per_window(self):
        cc = Reno(mss=1000)
        cc.ssthresh = cc.cwnd  # force CA
        window_packets = int(cc.cwnd / 1000)
        before = cc.cwnd
        for _ in range(window_packets):
            cc.on_ack(1000)
        assert cc.cwnd - before == pytest.approx(1000, rel=0.1)

    def test_reno_halves_on_loss(self):
        cc = Reno(mss=1000)
        cc.cwnd = 100_000
        cc.on_loss()
        assert cc.cwnd == pytest.approx(50_000)

    def test_timeout_collapses_to_one_mss(self):
        cc = Reno(mss=1500)
        cc.cwnd = 100_000
        cc.on_timeout()
        assert cc.cwnd == 1500

    def test_larger_mss_ramps_faster(self):
        small, large = Reno(mss=1500), Reno(mss=9000)
        small.ssthresh = small.cwnd
        large.ssthresh = large.cwnd
        for cc in (small, large):
            for _ in range(100):
                cc.on_ack(cc.mss)
        assert large.cwnd - 90_000 > (small.cwnd - 15_000) * 3

    def test_cubic_recovers_toward_wmax(self):
        cc = Cubic(mss=1500)
        cc.cwnd = 150_000
        cc.ssthresh = 1.0  # force CA
        cc.on_loss(now=0.0)
        after_loss = cc.cwnd
        for i in range(2000):
            cc.on_ack(1500, now=0.001 * i)
        assert cc.cwnd > after_loss

    def test_bad_mss_rejected(self):
        with pytest.raises(ValueError):
            Reno(mss=0)


class TestClosedFormModels:
    def test_mathis_proportional_to_mss(self):
        t1500 = mathis_throughput_bps(1448, rtt=0.01, loss=1e-4)
        t9000 = mathis_throughput_bps(8948, rtt=0.01, loss=1e-4)
        assert t9000 / t1500 == pytest.approx(8948 / 1448)

    def test_mathis_known_value(self):
        # MSS=1448, RTT=10ms, p=0.01%: ~ 142 Mbps
        tput = mathis_throughput_bps(1448, 0.01, 1e-4)
        assert tput == pytest.approx(1448 / (0.01 * (2e-4 / 3) ** 0.5) * 8, rel=1e-9)

    def test_padhye_below_mathis(self):
        mathis = mathis_throughput_bps(1448, 0.01, 1e-3)
        padhye = padhye_throughput_bps(1448, 0.01, 1e-3)
        assert padhye < mathis

    def test_zero_loss_unbounded(self):
        assert mathis_throughput_bps(1448, 0.01, 0) == float("inf")

    def test_slow_start_fewer_rtts_with_larger_mss(self):
        small = slow_start_rtts_to_rate(1e9, 1448, 0.01)
        large = slow_start_rtts_to_rate(1e9, 8948, 0.01)
        assert large < small
        assert small - large == pytest.approx(2.6, abs=0.5)  # log2(8948/1448)

    def test_ca_ramp_scales_with_mss(self):
        ramp_small = congestion_avoidance_ramp_bps(1448, 0.01, 10.0)
        ramp_large = congestion_avoidance_ramp_bps(8948, 0.01, 10.0)
        assert ramp_large / ramp_small == pytest.approx(8948 / 1448)
