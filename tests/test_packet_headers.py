"""Round-trip and field tests for Ethernet/IP/TCP/UDP/ICMP/GTP-U headers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet import (
    EthernetHeader,
    EtherType,
    GTPUHeader,
    ICMPMessage,
    ICMPType,
    IPProto,
    IPv4Header,
    TCPFlags,
    TCPHeader,
    TCPOption,
    UDPHeader,
    str_to_ip,
)
from repro.packet.ethernet import mac_to_str, str_to_mac, wire_bytes_for_payload


class TestEthernet:
    def test_roundtrip(self):
        header = EthernetHeader(
            dst=str_to_mac("aa:bb:cc:dd:ee:ff"),
            src=str_to_mac("11:22:33:44:55:66"),
            ethertype=EtherType.IPV4,
        )
        assert EthernetHeader.unpack(header.pack()) == header

    def test_mac_string_roundtrip(self):
        assert mac_to_str(str_to_mac("de:ad:be:ef:00:01")) == "de:ad:be:ef:00:01"

    def test_bad_mac_rejected(self):
        with pytest.raises(ValueError):
            str_to_mac("not-a-mac")

    def test_wire_bytes_includes_framing_overhead(self):
        # 1500 B payload -> 1500 + 14 hdr + 4 FCS + 8 preamble + 12 IFG
        assert wire_bytes_for_payload(1500) == 1538

    def test_wire_bytes_pads_to_minimum(self):
        assert wire_bytes_for_payload(10) == wire_bytes_for_payload(46)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 10)


class TestIPv4:
    def test_roundtrip_basic(self):
        header = IPv4Header(
            src=str_to_ip("10.0.0.1"),
            dst=str_to_ip("10.0.0.2"),
            protocol=IPProto.UDP,
            identification=0x1234,
            ttl=17,
            tos=0x04,
        )
        wire = header.pack(payload_len=100)
        parsed = IPv4Header.unpack(wire + b"\x00" * 100)
        assert parsed.src == header.src
        assert parsed.dst == header.dst
        assert parsed.total_length == 120
        assert parsed.ttl == 17
        assert parsed.tos == 0x04

    def test_flags_roundtrip(self):
        header = IPv4Header(dont_fragment=True, more_fragments=True, fragment_offset=185)
        parsed = IPv4Header.unpack(header.pack(payload_len=0))
        assert parsed.dont_fragment and parsed.more_fragments
        assert parsed.fragment_offset == 185

    def test_checksum_detects_corruption(self):
        wire = bytearray(IPv4Header(src=1, dst=2).pack(payload_len=0))
        wire[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(ValueError, match="checksum"):
            IPv4Header.unpack(bytes(wire))

    def test_options_must_be_word_aligned(self):
        header = IPv4Header(options=b"\x01\x01\x01")
        with pytest.raises(ValueError, match="options"):
            header.pack(payload_len=0)

    def test_oversized_packet_rejected(self):
        with pytest.raises(ValueError, match="too large"):
            IPv4Header().pack(payload_len=70000)

    def test_is_fragment(self):
        assert IPv4Header(more_fragments=True).is_fragment
        assert IPv4Header(fragment_offset=1).is_fragment
        assert not IPv4Header().is_fragment

    @given(
        src=st.integers(min_value=0, max_value=0xFFFFFFFF),
        dst=st.integers(min_value=0, max_value=0xFFFFFFFF),
        ident=st.integers(min_value=0, max_value=0xFFFF),
        offset=st.integers(min_value=0, max_value=0x1FFF),
        ttl=st.integers(min_value=1, max_value=255),
        tos=st.integers(min_value=0, max_value=255),
        payload_len=st.integers(min_value=0, max_value=9000),
    )
    def test_roundtrip_property(self, src, dst, ident, offset, ttl, tos, payload_len):
        header = IPv4Header(
            src=src,
            dst=dst,
            identification=ident,
            fragment_offset=offset,
            ttl=ttl,
            tos=tos,
        )
        wire = header.pack(payload_len=payload_len)
        parsed = IPv4Header.unpack(wire)
        assert (parsed.src, parsed.dst, parsed.identification) == (src, dst, ident)
        assert parsed.fragment_offset == offset
        assert parsed.total_length == 20 + payload_len


class TestTCP:
    def test_roundtrip_with_options(self):
        header = TCPHeader(
            src_port=4242,
            dst_port=80,
            seq=1000,
            ack=2000,
            flags=TCPFlags.SYN | TCPFlags.ACK,
            window=8192,
            options=[TCPOption.mss(8960), TCPOption.sack_permitted(), TCPOption.window_scale(7)],
        )
        wire = header.pack(b"", src_ip=1, dst_ip=2)
        parsed, hdr_len = TCPHeader.unpack(wire)
        assert hdr_len == header.header_len
        assert parsed.mss_option == 8960
        assert parsed.find_option(TCPOption.WINDOW_SCALE).data == b"\x07"
        assert parsed.syn and parsed.ack_flag

    def test_replace_mss(self):
        header = TCPHeader(flags=TCPFlags.SYN, options=[TCPOption.mss(1460)])
        assert header.replace_mss(8960)
        assert header.mss_option == 8960

    def test_replace_mss_absent_returns_false(self):
        assert not TCPHeader().replace_mss(8960)

    def test_checksum_covers_payload(self):
        a = TCPHeader(src_port=1, dst_port=2).pack(b"hello", src_ip=10, dst_ip=20)
        b = TCPHeader(src_port=1, dst_port=2).pack(b"world", src_ip=10, dst_ip=20)
        assert a[16:18] != b[16:18]

    def test_flag_properties(self):
        header = TCPHeader(flags=TCPFlags.FIN | TCPFlags.PSH | TCPFlags.RST)
        assert header.fin and header.psh and header.rst
        assert not header.syn

    @given(
        seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
        ack=st.integers(min_value=0, max_value=0xFFFFFFFF),
        flags=st.integers(min_value=0, max_value=255),
        window=st.integers(min_value=0, max_value=0xFFFF),
        mss=st.integers(min_value=536, max_value=65535),
    )
    def test_roundtrip_property(self, seq, ack, flags, window, mss):
        header = TCPHeader(
            src_port=1234, dst_port=5678, seq=seq, ack=ack, flags=flags,
            window=window, options=[TCPOption.mss(mss)],
        )
        parsed, _ = TCPHeader.unpack(header.pack())
        assert (parsed.seq, parsed.ack, parsed.flags, parsed.window) == (seq, ack, flags, window)
        assert parsed.mss_option == mss


class TestUDP:
    def test_roundtrip(self):
        header = UDPHeader(src_port=5000, dst_port=53)
        wire = header.pack(b"query", src_ip=1, dst_ip=2)
        parsed = UDPHeader.unpack(wire)
        assert parsed.src_port == 5000
        assert parsed.length == 8 + 5

    def test_checksum_verifies(self):
        payload = b"x" * 100
        header = UDPHeader(src_port=1, dst_port=2)
        header.pack(payload, src_ip=0x0A000001, dst_ip=0x0A000002)
        assert header.verify(payload, 0x0A000001, 0x0A000002)
        assert not header.verify(b"y" * 100, 0x0A000001, 0x0A000002)

    def test_zero_checksum_means_disabled(self):
        header = UDPHeader(src_port=1, dst_port=2, checksum=0)
        assert header.verify(b"anything", 1, 2)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            UDPHeader.unpack(b"\x00" * 4)


class TestICMP:
    def test_frag_needed_carries_mtu(self):
        msg = ICMPMessage.frag_needed(1400, original=b"\x45" + b"\x00" * 40)
        parsed = ICMPMessage.unpack(msg.pack())
        assert parsed.is_frag_needed
        assert parsed.next_hop_mtu == 1400
        assert len(parsed.payload) == 28  # IP header + 8 bytes echoed

    def test_echo_roundtrip(self):
        request = ICMPMessage.echo_request(ident=7, seq=3, data=b"ping")
        reply = ICMPMessage.echo_reply(request)
        assert reply.icmp_type == ICMPType.ECHO_REPLY
        assert reply.payload == b"ping"
        parsed = ICMPMessage.unpack(reply.pack())
        assert parsed.rest == request.rest


class TestGTPU:
    def test_roundtrip(self):
        header = GTPUHeader(teid=0xDEADBEEF)
        parsed = GTPUHeader.unpack(header.pack(payload_len=1452))
        assert parsed.teid == 0xDEADBEEF
        assert parsed.length == 1452

    def test_bad_version_rejected(self):
        data = bytearray(GTPUHeader(teid=1).pack(payload_len=0))
        data[0] = 0x50  # version 2
        with pytest.raises(ValueError, match="version"):
            GTPUHeader.unpack(bytes(data))
