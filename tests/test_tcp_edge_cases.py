"""TCP edge cases: CUBIC end-to-end, FIN handling, SACK behaviour."""

import pytest

from repro.net import Topology
from repro.packet import TCPOption
from repro.sim import Netem
from repro.tcpstack import Cubic, Reno, TCPConnection, TCPListener, TCPState


def simple_pair(netem=None, mtu=1500, bandwidth=10e9):
    topo = Topology()
    client = topo.add_host("client")
    server = topo.add_host("server")
    router = topo.add_router("router")
    topo.link(client, router, mtu=mtu, bandwidth_bps=bandwidth)
    topo.link(router, server, mtu=mtu, bandwidth_bps=bandwidth, netem=netem,
              queue_bytes=1 << 24)
    topo.build_routes()
    return topo, client, server


class TestCubicEndToEnd:
    def test_cubic_completes_lossy_transfer(self):
        topo, client, server = simple_pair(netem=Netem(delay=2e-3, loss=0.005))
        listener = TCPListener(server, 80, cc_class=Cubic)
        conn = TCPConnection(client, 40000, server.ip, 80, cc_class=Cubic)
        conn.connect()
        topo.run(until=1.0)
        conn.send_bulk(400_000)
        topo.run(until=60.0)
        assert listener.connections[0].bytes_delivered == 400_000
        assert conn.retransmits > 0

    def test_cubic_and_reno_interoperate(self):
        topo, client, server = simple_pair()
        listener = TCPListener(server, 80, cc_class=Reno)
        conn = TCPConnection(client, 40000, server.ip, 80, cc_class=Cubic)
        conn.connect()
        topo.run(until=1.0)
        conn.send_bulk(300_000)
        topo.run(until=5.0)
        assert listener.connections[0].bytes_delivered == 300_000


class TestFinHandling:
    def test_close_after_data_reaches_close_wait(self):
        topo, client, server = simple_pair()
        listener = TCPListener(server, 80)
        conn = TCPConnection(client, 40000, server.ip, 80)
        conn.connect()
        topo.run(until=1.0)
        conn.send_bulk(50_000)
        conn.close()
        topo.run(until=5.0)
        server_conn = listener.connections[0]
        assert server_conn.bytes_delivered == 50_000
        assert conn.state == TCPState.FIN_WAIT
        assert server_conn.state == TCPState.CLOSE_WAIT

    def test_immediate_close_sends_fin_only(self):
        topo, client, server = simple_pair()
        listener = TCPListener(server, 80)
        conn = TCPConnection(client, 40000, server.ip, 80)
        conn.connect()
        topo.run(until=1.0)
        conn.close()
        topo.run(until=3.0)
        assert listener.connections[0].state == TCPState.CLOSE_WAIT
        assert listener.connections[0].bytes_delivered == 0


class TestSackBehaviour:
    def test_receiver_advertises_sack_blocks_on_gap(self):
        # Observe the raw ACKs leaving a receiver that has a hole.
        topo, client, server = simple_pair()
        listener = TCPListener(server, 80)
        conn = TCPConnection(client, 40000, server.ip, 80)
        conn.connect()
        topo.run(until=1.0)
        server_conn = listener.connections[0]

        sack_acks = []
        original = server_conn._send_ack

        def spy():
            original()
            if server_conn._ooo:
                sack_acks.append(list(server_conn._ooo))

        server_conn._send_ack = spy
        # Inject out-of-order data directly: a segment beyond a hole.
        server_conn._handle_data(server_conn.rcv_nxt + 5000, 1000, psh=False)
        assert sack_acks, "dup-ACK with SACK state expected"
        start, stop = sack_acks[0][0]
        assert (stop - start) & 0xFFFFFFFF == 1000

    def test_retransmit_targets_exact_hole(self):
        topo, client, server = simple_pair(netem=Netem(loss=0.0))
        listener = TCPListener(server, 80)
        conn = TCPConnection(client, 40000, server.ip, 80)
        conn.connect()
        topo.run(until=1.0)
        # Fabricate SACK state: 1460-byte hole at snd_una, then data.
        conn.snd_nxt = (conn.snd_una + 20_000) & 0xFFFFFFFF
        conn._sack_insert((conn.snd_una + 1460) & 0xFFFFFFFF,
                          (conn.snd_una + 20_000) & 0xFFFFFFFF)
        sent = []
        conn._transmit_segment = lambda seq, length, retransmission=False: sent.append(
            (seq, length))
        conn._retransmit_head()
        assert sent == [(conn.snd_una, 1460)]

    def test_stale_sack_blocks_pruned(self):
        topo, client, server = simple_pair()
        conn = TCPConnection(client, 40000, server.ip, 80)
        conn._sack_insert(5000, 6000)
        assert conn._sacked
        conn.snd_una = 7000
        conn._sack_prune()
        assert conn._sacked == []


class TestMiscConnection:
    def test_connect_twice_rejected(self):
        topo, client, server = simple_pair()
        conn = TCPConnection(client, 40000, server.ip, 80)
        conn.connect()
        with pytest.raises(RuntimeError):
            conn.connect()

    def test_negative_bulk_rejected(self):
        topo, client, server = simple_pair()
        conn = TCPConnection(client, 40000, server.ip, 80)
        with pytest.raises(ValueError):
            conn.send_bulk(-1)

    def test_throughput_zero_duration(self):
        topo, client, server = simple_pair()
        conn = TCPConnection(client, 40000, server.ip, 80)
        assert conn.throughput_bps(0) == 0.0

    def test_window_scale_option_on_syn(self):
        topo, client, server = simple_pair()
        syns = []
        original = client.send

        def spy(packet):
            if packet.is_tcp and packet.tcp.syn:
                syns.append(packet)
            return original(packet)

        client.send = spy
        conn = TCPConnection(client, 40000, server.ip, 80, mss=8960)
        conn.connect()
        assert syns
        assert syns[0].tcp.mss_option == 8960
        wscale = syns[0].tcp.find_option(TCPOption.WINDOW_SCALE)
        assert wscale.data[0] == TCPConnection.WINDOW_SCALE
