"""Tests for the Packet object, flow keys, builders, and addresses."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet import (
    FlowKey,
    ICMPMessage,
    IPProto,
    Packet,
    TCPFlags,
    build_icmp,
    build_tcp,
    build_udp,
    ip_to_str,
    str_to_ip,
)
from repro.packet.address import in_subnet, make_subnet


class TestAddress:
    def test_roundtrip(self):
        assert ip_to_str(str_to_ip("192.168.1.42")) == "192.168.1.42"

    def test_ordering_is_big_endian(self):
        assert str_to_ip("1.0.0.0") > str_to_ip("0.255.255.255")

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            str_to_ip(bad)

    def test_subnet_membership(self):
        network, mask = make_subnet("10.1.0.0/16")
        assert in_subnet(str_to_ip("10.1.200.7"), network, mask)
        assert not in_subnet(str_to_ip("10.2.0.1"), network, mask)

    def test_zero_prefix_matches_everything(self):
        network, mask = make_subnet("0.0.0.0/0")
        assert in_subnet(str_to_ip("255.255.255.255"), network, mask)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip_property(self, value):
        assert str_to_ip(ip_to_str(value)) == value


class TestFlowKey:
    def test_reversed(self):
        key = FlowKey(IPProto.TCP, 1, 1000, 2, 80)
        assert key.reversed() == FlowKey(IPProto.TCP, 2, 80, 1, 1000)
        assert key.reversed().reversed() == key

    def test_canonical_is_direction_independent(self):
        key = FlowKey(IPProto.TCP, 9, 1000, 2, 80)
        assert key.canonical() == key.reversed().canonical()

    def test_hashable(self):
        assert len({FlowKey(6, 1, 2, 3, 4), FlowKey(6, 1, 2, 3, 4)}) == 1


class TestPacket:
    def test_tcp_roundtrip(self):
        packet = build_tcp("10.0.0.1", "10.0.0.2", 1234, 80, payload=b"GET /", seq=42,
                           flags=TCPFlags.PSH | TCPFlags.ACK)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.is_tcp
        assert parsed.tcp.seq == 42
        assert parsed.payload == b"GET /"
        assert parsed.total_len == packet.total_len

    def test_udp_roundtrip(self):
        packet = build_udp("10.0.0.1", "10.0.0.2", 5000, 6000, payload=b"datagram")
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.is_udp
        assert parsed.payload == b"datagram"

    def test_icmp_roundtrip(self):
        packet = build_icmp("10.0.0.1", "10.0.0.2", ICMPMessage.echo_request(1, 2, b"abc"))
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.is_icmp
        assert parsed.icmp.payload == b"abc"

    def test_flow_key_none_for_icmp(self):
        packet = build_icmp("10.0.0.1", "10.0.0.2", ICMPMessage.echo_request(1, 2))
        assert packet.flow_key() is None

    def test_flow_key_matches_fields(self):
        packet = build_udp("10.0.0.1", "10.0.0.2", 5000, 6000)
        key = packet.flow_key()
        assert key == FlowKey(IPProto.UDP, str_to_ip("10.0.0.1"), 5000, str_to_ip("10.0.0.2"), 6000)

    def test_total_len_matches_serialization(self):
        packet = build_tcp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"x" * 777, mss=8960)
        assert packet.total_len == len(packet.to_bytes())

    def test_wire_len_adds_ethernet_overhead(self):
        packet = build_udp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"x" * 1000)
        assert packet.wire_len == packet.total_len + 38

    def test_copy_is_independent(self):
        packet = build_tcp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"abc", mss=1460)
        clone = packet.copy()
        clone.tcp.replace_mss(9000)
        clone.ip.ttl = 1
        clone.meta["tag"] = 1
        assert packet.tcp.mss_option == 1460
        assert packet.ip.ttl == 64
        assert "tag" not in packet.meta

    def test_accessor_type_errors(self):
        packet = build_udp("1.1.1.1", "2.2.2.2", 1, 2)
        with pytest.raises(TypeError):
            _ = packet.tcp
        with pytest.raises(TypeError):
            _ = packet.icmp

    def test_tcp_sets_df_by_default(self):
        assert build_tcp("1.1.1.1", "2.2.2.2", 1, 2).ip.dont_fragment
        assert not build_udp("1.1.1.1", "2.2.2.2", 1, 2).ip.dont_fragment

    @given(payload=st.binary(max_size=4096))
    def test_udp_roundtrip_property(self, payload):
        packet = build_udp("10.9.8.7", "1.2.3.4", 1111, 2222, payload=payload)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.payload == payload
        assert parsed.udp.length == 8 + len(payload)
