"""Tests for PXGW's TCP stream splicing (merge) and split engines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TcpMergeEngine, TcpSplitEngine
from repro.packet import TCPFlags, build_tcp, build_udp


def seg(seq, payload, flags=TCPFlags.ACK, flow=0):
    return build_tcp("198.51.100.1", "10.1.0.5", 5000 + flow, 80,
                     payload=payload, seq=seq, flags=flags)


def patterned(length, offset=0):
    return bytes((offset + i) % 251 for i in range(length))


class TestTcpMergeEngine:
    def test_splices_to_exact_target(self):
        merge = TcpMergeEngine(target_payload=8960)
        outputs = []
        seq = 0
        for _ in range(10):
            outputs.extend(merge.feed(seg(seq, patterned(1448, seq))))
            seq += 1448
        # 10 * 1448 = 14480 -> one full 8960 segment emitted so far.
        assert len(outputs) == 1
        assert len(outputs[0].payload) == 8960
        assert outputs[0].tcp.seq == 0
        outputs.extend(merge.flush())
        assert len(outputs) == 2
        assert outputs[1].tcp.seq == 8960
        assert len(outputs[1].payload) == 14480 - 8960

    def test_payload_content_preserved_across_splice(self):
        merge = TcpMergeEngine(target_payload=4000)
        stream = b"".join(patterned(997, i) for i in range(13))
        outputs = []
        cursor = 0
        while cursor < len(stream):
            chunk = stream[cursor : cursor + 997]
            outputs.extend(merge.feed(seg(cursor, chunk)))
            cursor += len(chunk)
        outputs.extend(merge.flush())
        reassembled = b"".join(p.payload for p in outputs)
        assert reassembled == stream
        # Sequence numbers are continuous across emitted segments.
        expected_seq = 0
        for packet in outputs:
            assert packet.tcp.seq == expected_seq
            expected_seq += len(packet.payload)

    def test_out_of_order_flushes_and_restarts(self):
        merge = TcpMergeEngine(target_payload=8000)
        merge.feed(seg(0, patterned(1000)))
        merge.feed(seg(1000, patterned(1000)))
        outputs = merge.feed(seg(5000, patterned(1000)))  # gap at 2000
        assert len(outputs) == 1
        assert outputs[0].tcp.seq == 0
        assert len(outputs[0].payload) == 2000
        tail = merge.flush()
        assert tail[0].tcp.seq == 5000

    def test_control_flags_flush_and_passthrough(self):
        merge = TcpMergeEngine(target_payload=8000)
        merge.feed(seg(0, patterned(500)))
        fin = seg(500, b"", flags=TCPFlags.FIN | TCPFlags.ACK)
        outputs = merge.feed(fin)
        assert len(outputs) == 2
        assert outputs[0].tcp.seq == 0 and len(outputs[0].payload) == 500
        assert outputs[1] is fin

    def test_pure_acks_pass_through(self):
        merge = TcpMergeEngine(target_payload=8000)
        merge.feed(seg(0, patterned(500)))
        ack = seg(500, b"")
        assert merge.feed(ack) == [ack]
        assert merge.pending_bytes() == 500

    def test_latest_ack_window_propagated(self):
        merge = TcpMergeEngine(target_payload=2000)
        first = seg(0, patterned(1000))
        first.tcp.ack, first.tcp.window = 111, 100
        second = seg(1000, patterned(1000))
        second.tcp.ack, second.tcp.window = 222, 50
        outputs = merge.feed(first) + merge.feed(second)
        assert len(outputs) == 1
        assert outputs[0].tcp.ack == 222
        assert outputs[0].tcp.window == 50

    def test_flows_are_independent(self):
        merge = TcpMergeEngine(target_payload=4000)
        merge.feed(seg(0, patterned(1000), flow=0))
        merge.feed(seg(0, patterned(1000), flow=1))
        flushed = merge.flush()
        assert len(flushed) == 2
        assert all(len(p.payload) == 1000 for p in flushed)

    def test_flush_older_than_only_hits_stale(self):
        merge = TcpMergeEngine(target_payload=8000)
        merge.feed(seg(0, patterned(100), flow=0), now=0.0)
        merge.feed(seg(0, patterned(100), flow=1), now=0.0004)
        out = merge.flush_older_than(now=0.0005, max_age=0.0005)
        assert len(out) == 1
        assert len(merge) == 1

    def test_eviction_under_context_pressure(self):
        merge = TcpMergeEngine(target_payload=8000, max_contexts=4)
        for flow in range(8):
            merge.feed(seg(0, patterned(100), flow=flow))
        assert merge.evictions == 4
        assert len(merge) == 4

    def test_seq_wraparound(self):
        merge = TcpMergeEngine(target_payload=3000)
        start = (1 << 32) - 1500
        merge.feed(seg(start, patterned(1500)))
        outputs = merge.feed(seg(4294965796 + 1500 & 0xFFFFFFFF, patterned(1500)))
        outputs.extend(merge.flush())
        total = sum(len(p.payload) for p in outputs)
        assert total == 3000
        assert outputs[0].tcp.seq == start

    def test_non_tcp_passthrough(self):
        merge = TcpMergeEngine(target_payload=8000)
        udp = build_udp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"u")
        assert merge.feed(udp) == [udp]

    def test_emitted_packet_serializes(self):
        merge = TcpMergeEngine(target_payload=8960)
        seq = 0
        outputs = []
        for _ in range(7):
            outputs.extend(merge.feed(seg(seq, patterned(1448, seq))))
            seq += 1448
        merged = outputs[0]
        assert merged.total_len == len(merged.to_bytes())
        assert merged.total_len == 9000

    @settings(max_examples=25)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=1460), min_size=1, max_size=60),
        target=st.integers(min_value=1000, max_value=9000),
    )
    def test_byte_stream_identity_property(self, sizes, target):
        merge = TcpMergeEngine(target_payload=target)
        stream = bytearray()
        outputs = []
        seq = 0
        for index, size in enumerate(sizes):
            chunk = patterned(size, index)
            stream.extend(chunk)
            outputs.extend(merge.feed(seg(seq, chunk)))
            seq += size
        outputs.extend(merge.flush())
        assert b"".join(p.payload for p in outputs) == bytes(stream)
        assert all(len(p.payload) <= target for p in outputs)


class TestTcpSplitEngine:
    def test_small_passthrough(self):
        split = TcpSplitEngine(emtu=1500)
        packet = seg(0, patterned(1000))
        assert split.process(packet) == [packet]

    def test_split_respects_emtu(self):
        split = TcpSplitEngine(emtu=1500)
        packet = seg(0, patterned(8960))
        segments = split.process(packet)
        assert all(s.total_len <= 1500 for s in segments)
        assert b"".join(s.payload for s in segments) == packet.payload

    def test_split_counts(self):
        split = TcpSplitEngine(emtu=1500)
        split.process(seg(0, patterned(8960)))
        assert split.split_packets == 1
        assert split.output_segments == 7  # ceil(8960/1460)

    def test_non_tcp_passthrough(self):
        split = TcpSplitEngine(emtu=1500)
        udp = build_udp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"x" * 3000)
        assert split.process(udp) == [udp]

    def test_bad_emtu_rejected(self):
        with pytest.raises(ValueError):
            TcpSplitEngine(emtu=100)

    def test_merge_then_split_roundtrip(self):
        merge = TcpMergeEngine(target_payload=8960)
        split = TcpSplitEngine(emtu=1500)
        stream = b"".join(patterned(1448, i) for i in range(20))
        outputs = []
        seq = 0
        for i in range(20):
            outputs.extend(merge.feed(seg(seq, stream[seq : seq + 1448])))
            seq += 1448
        outputs.extend(merge.flush())
        wire = []
        for packet in outputs:
            wire.extend(split.process(packet))
        assert b"".join(p.payload for p in wire) == stream
        assert all(p.total_len <= 1500 for p in wire)
