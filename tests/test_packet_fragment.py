"""Tests for IPv4 fragmentation and reassembly — the substrate F-PMTUD rides on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packet import FragmentationNeeded, Packet, Reassembler, build_tcp, build_udp
from repro.packet.fragment import fragment_packet


def udp_of_total_len(total_len, **kwargs):
    """A UDP packet whose IP total length is exactly *total_len*."""
    payload_len = total_len - 20 - 8
    payload = bytes(i % 251 for i in range(payload_len))
    return build_udp("10.0.0.1", "10.0.0.2", 7, 9, payload=payload, **kwargs)


class TestFragmentation:
    def test_fits_returns_unchanged(self):
        packet = udp_of_total_len(1500)
        assert fragment_packet(packet, 1500) == [packet]

    def test_df_raises(self):
        packet = udp_of_total_len(1501, dont_fragment=True)
        with pytest.raises(FragmentationNeeded) as info:
            fragment_packet(packet, 1500)
        assert info.value.mtu == 1500

    def test_fragment_sizes_respect_mtu_and_alignment(self):
        packet = udp_of_total_len(9000)
        fragments = fragment_packet(packet, 1500)
        for fragment in fragments[:-1]:
            assert fragment.total_len <= 1500
            # Non-final fragments carry payload in multiples of 8 bytes.
            assert (fragment.total_len - 20) % 8 == 0
        assert sum(f.total_len - 20 for f in fragments) == 9000 - 20

    def test_largest_fragment_reveals_path_mtu(self):
        # The F-PMTUD invariant: max fragment size == effective hop MTU (mod 8 alignment).
        packet = udp_of_total_len(9000)
        fragments = fragment_packet(packet, 1000)
        largest = max(f.total_len for f in fragments)
        assert 992 < largest <= 1000

    def test_only_first_fragment_has_offset_zero(self):
        fragments = fragment_packet(udp_of_total_len(4000), 1500)
        assert fragments[0].ip.fragment_offset == 0
        assert all(f.ip.fragment_offset > 0 for f in fragments[1:])
        assert all(f.ip.more_fragments for f in fragments[:-1])
        assert not fragments[-1].ip.more_fragments

    def test_fragments_share_identification(self):
        packet = udp_of_total_len(4000)
        fragments = fragment_packet(packet, 1500)
        assert {f.ip.identification for f in fragments} == {packet.ip.identification}

    def test_refragmenting_a_fragment_preserves_absolute_offsets(self):
        packet = udp_of_total_len(9000)
        first_pass = fragment_packet(packet, 3000)
        second_pass = fragment_packet(first_pass[1], 1500)
        base = first_pass[1].ip.fragment_offset
        assert second_pass[0].ip.fragment_offset == base
        assert second_pass[-1].ip.more_fragments == first_pass[1].ip.more_fragments

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ValueError):
            fragment_packet(udp_of_total_len(1000), 24)

    def test_tcp_packet_fragmentable_when_df_clear(self):
        packet = build_tcp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"z" * 3000, dont_fragment=False)
        fragments = fragment_packet(packet, 1500)
        assert len(fragments) == 3  # 20B IP + 20B TCP + 3000B payload = 3040


class TestReassembly:
    def test_roundtrip_through_fragmentation(self):
        packet = udp_of_total_len(9000)
        reassembler = Reassembler()
        result = None
        for fragment in fragment_packet(packet, 1500):
            result = reassembler.add(fragment)
        assert result is not None
        assert result.is_udp
        assert result.payload == packet.payload

    def test_out_of_order_delivery(self):
        packet = udp_of_total_len(6000)
        fragments = fragment_packet(packet, 1500)
        reassembler = Reassembler()
        result = None
        for fragment in reversed(fragments):
            result = reassembler.add(fragment)
        assert result is not None
        assert result.payload == packet.payload

    def test_incomplete_returns_none(self):
        fragments = fragment_packet(udp_of_total_len(6000), 1500)
        reassembler = Reassembler()
        for fragment in fragments[:-1]:
            assert reassembler.add(fragment) is None
        assert len(reassembler) == 1

    def test_duplicate_fragments_harmless(self):
        fragments = fragment_packet(udp_of_total_len(4000), 1500)
        reassembler = Reassembler()
        reassembler.add(fragments[0])
        reassembler.add(fragments[0])
        result = None
        for fragment in fragments[1:]:
            result = reassembler.add(fragment)
        assert result is not None
        assert reassembler.last_fragment_sizes == sorted(
            (f.total_len for f in fragments), reverse=True
        )

    def test_interleaved_datagrams(self):
        a = udp_of_total_len(4000)
        b = udp_of_total_len(4000)
        frags_a = fragment_packet(a, 1500)
        frags_b = fragment_packet(b, 1500)
        reassembler = Reassembler()
        done = []
        for fa, fb in zip(frags_a, frags_b):
            for fragment in (fa, fb):
                result = reassembler.add(fragment)
                if result:
                    done.append(result)
        assert len(done) == 2

    def test_unfragmented_passthrough_records_size(self):
        packet = udp_of_total_len(800)
        reassembler = Reassembler()
        assert reassembler.add(packet) is packet
        assert reassembler.last_fragment_sizes == [800]

    def test_timeout_expires_partial_state(self):
        fragments = fragment_packet(udp_of_total_len(4000), 1500)
        reassembler = Reassembler(timeout=5.0)
        reassembler.add(fragments[0], now=0.0)
        assert len(reassembler) == 1
        reassembler.add(udp_of_total_len(100), now=10.0)  # triggers expiry sweep
        assert len(reassembler) == 0

    @settings(max_examples=30)
    @given(
        total_len=st.integers(min_value=1200, max_value=20000),
        mtu=st.integers(min_value=576, max_value=9000),
    )
    def test_fragment_reassemble_identity_property(self, total_len, mtu):
        packet = udp_of_total_len(total_len)
        reassembler = Reassembler()
        result = None
        for fragment in fragment_packet(packet, mtu):
            result = reassembler.add(fragment)
        assert result is not None
        assert result.payload == packet.payload
        assert result.total_len == packet.total_len


class TestFragmentationProperties:
    """Hypothesis properties over the fragmentation substrate.

    These are the guarantees F-PMTUD leans on: fragments tile the
    original datagram exactly, the largest fragment always lands in the
    8-byte alignment band just below the hop MTU, and re-fragmentation
    along a multi-bottleneck path composes with reassembly.
    """

    @settings(max_examples=40)
    @given(
        payload_len=st.integers(min_value=1, max_value=15000),
        mtu=st.integers(min_value=576, max_value=9000),
    )
    def test_fragments_tile_exactly_without_overlap(self, payload_len, mtu):
        packet = udp_of_total_len(20 + 8 + payload_len)
        fragments = fragment_packet(packet, mtu)
        if len(fragments) == 1:
            # Unfragmented pass-through: the original packet, untouched.
            assert fragments[0] is packet
            return
        spans = sorted(
            (f.ip.fragment_offset * 8, f.ip.fragment_offset * 8 + len(f.payload))
            for f in fragments
        )
        cursor = 0
        for lo, hi in spans:
            assert lo == cursor  # no hole, no overlap
            cursor = hi
        assert cursor == 8 + payload_len  # UDP header rides in fragment 0
        assert {f.ip.identification for f in fragments} == {packet.ip.identification}

    @settings(max_examples=40)
    @given(
        total_len=st.integers(min_value=1000, max_value=20000),
        mtu=st.integers(min_value=576, max_value=9000),
    )
    def test_largest_fragment_lands_in_alignment_band(self, total_len, mtu):
        """The F-PMTUD measurement primitive: whenever a hop fragments,
        the largest fragment size is in ``(mtu - 8, mtu]`` — so
        ``max(sizes)`` under-reports the true MTU by at most 7 bytes."""
        packet = udp_of_total_len(total_len)
        fragments = fragment_packet(packet, mtu)
        if len(fragments) == 1:
            assert total_len <= mtu
            return
        largest = max(f.total_len for f in fragments)
        assert mtu - 7 <= largest <= mtu

    @settings(max_examples=25)
    @given(
        total_len=st.integers(min_value=3000, max_value=18000),
        first_mtu=st.integers(min_value=2000, max_value=8000),
        second_mtu=st.integers(min_value=576, max_value=1999),
        rng=st.randoms(use_true_random=False),
    )
    def test_two_stage_refragmentation_roundtrip(
        self, total_len, first_mtu, second_mtu, rng
    ):
        """Fragmenting at one bottleneck, re-fragmenting the pieces at a
        narrower one, then reassembling in arbitrary order is identity —
        the multi-bottleneck path F-PMTUD probes through."""
        packet = udp_of_total_len(total_len)
        pieces = []
        for fragment in fragment_packet(packet, first_mtu):
            pieces.extend(fragment_packet(fragment, second_mtu))
        rng.shuffle(pieces)
        reassembler = Reassembler()
        results = [r for r in map(reassembler.add, pieces) if r is not None]
        assert len(results) == 1
        assert results[0].payload == packet.payload
        assert results[0].total_len == packet.total_len
        assert len(reassembler) == 0

    @settings(max_examples=25)
    @given(
        payload_len=st.integers(min_value=1, max_value=600),
        mtu=st.integers(min_value=28, max_value=64),
    )
    def test_min_fragment_edge_mtus(self, payload_len, mtu):
        """MTUs barely above the IP header still work: usable payload is
        ``(mtu - 20) & ~7`` (>= 8 for mtu >= 28), and reassembly holds."""
        packet = udp_of_total_len(20 + 8 + payload_len)
        fragments = fragment_packet(packet, mtu)
        usable = (mtu - 20) & ~7
        for fragment in fragments[:-1]:
            assert len(fragment.payload) == usable
        reassembler = Reassembler()
        results = [r for r in map(reassembler.add, fragments) if r is not None]
        assert results and results[0].payload == packet.payload

    @settings(max_examples=15)
    @given(mtu=st.integers(min_value=20, max_value=27))
    def test_mtu_below_minimum_payload_rejected(self, mtu):
        with pytest.raises(ValueError):
            fragment_packet(udp_of_total_len(1000), mtu)

    @settings(max_examples=30)
    @given(
        payload_len=st.integers(min_value=1, max_value=9000),
        mtu=st.integers(min_value=576, max_value=1500),
    )
    def test_tcp_content_roundtrip(self, payload_len, mtu):
        """Byte-exact round-trip for TCP with patterned content: the
        reassembled payload matches the original bytes, not just length."""
        payload = bytes((3 * i + 1) % 256 for i in range(payload_len))
        packet = build_tcp(
            "10.2.0.1", "10.3.0.1", 444, 555, payload=payload, dont_fragment=False
        )
        reassembler = Reassembler()
        results = [
            r for r in map(reassembler.add, fragment_packet(packet, mtu)) if r is not None
        ]
        assert len(results) == 1
        assert results[0].is_tcp
        assert results[0].payload == payload
