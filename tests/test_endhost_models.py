"""Tests for the end-host receiver/sender cost models."""

import random

import pytest

from repro.core import encode_caravan
from repro.cpu import XEON_5512U
from repro.nic import ReceiverConfig, ReceiverModel, SenderModel
from repro.packet import build_tcp, build_udp
from repro.workload import make_tcp_sources, make_udp_sources, interleave


def tcp_arrivals(payload=1448, flows=1, total=10000, mean_run=24.0, seed=5):
    sources = make_tcp_sources(flows, payload)
    return [p for p, _ in interleave(sources, total, random.Random(seed), mean_run)]


def tput(model):
    return model.account.sustainable_goodput_bps(XEON_5512U, cores=1)


class TestReceiverModel:
    def test_all_payload_delivered(self):
        arrivals = tcp_arrivals(total=2000)
        model = ReceiverModel(ReceiverConfig(lro=True, gro=True))
        model.process(arrivals)
        delivered = sum(len(p.payload) for p in model.delivered)
        assert delivered == 2000 * 1448

    def test_lro_cheaper_than_gro_cheaper_than_none(self):
        results = {}
        for name, config in [
            ("none", ReceiverConfig()),
            ("gro", ReceiverConfig(gro=True)),
            ("lro", ReceiverConfig(lro=True)),
        ]:
            model = ReceiverModel(config)
            model.process(tcp_arrivals(total=5000))
            results[name] = tput(model)
        assert results["none"] < results["gro"] < results["lro"]

    def test_jumbo_without_offloads_beats_1500_without(self):
        small = ReceiverModel(ReceiverConfig())
        small.process(tcp_arrivals(payload=1448, total=6000))
        large = ReceiverModel(ReceiverConfig())
        large.process(tcp_arrivals(payload=8948, total=1000))
        assert tput(large) > 2 * tput(small)

    def test_aggregation_factor_reflects_merging(self):
        model = ReceiverModel(ReceiverConfig(lro=True, poll_batch=40))
        model.process(tcp_arrivals(total=4000))
        assert model.aggregation_factor > 10

    def test_concurrency_hurts_1500_more_than_9000(self):
        def run(payload, flows):
            model = ReceiverModel(ReceiverConfig(lro=True, gro=True, poll_batch=40))
            model.process(tcp_arrivals(payload=payload, flows=flows,
                                       total=12000, mean_run=1.0))
            return tput(model)

        drop_1500 = 1 - run(1448, 4) / run(1448, 1)
        drop_9000 = 1 - run(8948, 4) / run(8948, 1)
        assert drop_1500 > 0.2
        assert drop_9000 < 0.1

    def test_busy_polling_amortizes_wakeups(self):
        arrivals = tcp_arrivals(flows=32, total=8000, mean_run=1.0)
        interrupt = ReceiverModel(ReceiverConfig())
        interrupt.process(list(arrivals))
        polling = ReceiverModel(ReceiverConfig(busy_polling=True))
        polling.process(list(arrivals))
        assert tput(polling) > 1.5 * tput(interrupt)
        assert "wakeup" not in polling.account.breakdown

    def test_pure_acks_priced_separately(self):
        acks = [build_tcp("1.1.1.1", "2.2.2.2", 1, 2, seq=i) for i in range(100)]
        model = ReceiverModel(ReceiverConfig())
        model.process(acks)
        assert model.account.breakdown["ack"] > 0
        assert model.account.goodput_bytes == 0

    def test_caravan_bundle_parse_charged(self):
        sources = make_udp_sources(1, 1200)
        [source] = sources
        bundle = encode_caravan([source.next_packet() for _ in range(6)])
        model = ReceiverModel(ReceiverConfig(busy_polling=True))
        model.process([bundle])
        assert model.account.breakdown["parse"] == pytest.approx(6 * 50.0)

    def test_caravan_cheaper_than_loose_datagrams(self):
        sources = make_udp_sources(1, 1200)
        loose = [sources[0].next_packet() for _ in range(60)]
        bundles = [
            encode_caravan([sources[0].next_packet() for _ in range(6)])
            for _ in range(10)
        ]
        loose_model = ReceiverModel(ReceiverConfig(busy_polling=True))
        loose_model.process(loose)
        bundle_model = ReceiverModel(ReceiverConfig(busy_polling=True))
        bundle_model.process(bundles)
        assert tput(bundle_model) > 1.5 * tput(loose_model)


class TestSenderModel:
    def template(self):
        return build_tcp("1.1.1.1", "2.2.2.2", 1000, 80)

    def test_emits_mss_sized_packets(self):
        sender = SenderModel(mss=1448)
        packets = sender.send(self.template(), total_bytes=100_000)
        assert sum(len(p.payload) for p in packets) == 100_000
        assert all(len(p.payload) <= 1448 for p in packets)

    def test_tso_cheaper_than_software_segmentation(self):
        with_tso = SenderModel(mss=1448, tso=True)
        with_tso.send(self.template(), 1_000_000)
        without = SenderModel(mss=1448, tso=False)
        without.send(self.template(), 1_000_000)
        assert without.account.cycles > with_tso.account.cycles

    def test_larger_mss_fewer_packets_same_bytes(self):
        small = SenderModel(mss=1448)
        large = SenderModel(mss=8948)
        small_packets = small.send(self.template(), 500_000)
        large_packets = large.send(self.template(), 500_000)
        assert len(large_packets) < len(small_packets) / 5
        assert small.account.goodput_bytes == large.account.goodput_bytes

    def test_bad_mss_rejected(self):
        with pytest.raises(ValueError):
            SenderModel(mss=0)
