"""Tests for RSS hashing, DMA models, queues, and the cycle account."""

import pytest

from repro.cpu import CpuSpec, CycleAccount, XEON_5512U, XEON_6554S
from repro.nic import (
    FULL_DMA,
    HEADER_ONLY_DMA,
    HairpinQueue,
    RssDistributor,
    RxQueue,
    ScatterGatherList,
    toeplitz_hash,
)
from repro.packet import FlowKey, IPProto, build_udp
from repro.nic.rss import flow_hash


class TestToeplitz:
    def test_known_vector(self):
        # Microsoft RSS verification vector: 66.9.149.187:2794 ->
        # 161.142.100.80:1766 hashes to 0x51ccc178 with the default key.
        import struct

        data = struct.pack(
            "!IIHH",
            (66 << 24) | (9 << 16) | (149 << 8) | 187,
            (161 << 24) | (142 << 16) | (100 << 8) | 80,
            2794,
            1766,
        )
        assert toeplitz_hash(data) == 0x51CCC178

    def test_second_known_vector(self):
        import struct

        # 199.92.111.2:14230 -> 65.69.140.83:4739 -> 0xc626b0ea
        data = struct.pack(
            "!IIHH",
            (199 << 24) | (92 << 16) | (111 << 8) | 2,
            (65 << 24) | (69 << 16) | (140 << 8) | 83,
            14230,
            4739,
        )
        assert toeplitz_hash(data) == 0xC626B0EA

    def test_key_too_short_rejected(self):
        with pytest.raises(ValueError):
            toeplitz_hash(b"\x01" * 16, key=b"\x00" * 8)

    def test_deterministic(self):
        key = FlowKey(IPProto.TCP, 1, 2, 3, 4)
        assert flow_hash(key) == flow_hash(key)


class TestRssDistributor:
    def test_flows_spread_across_queues(self):
        rss = RssDistributor(queues=8)
        flows = [FlowKey(IPProto.TCP, 0x0A000001 + i, 1000 + i, 0x0A000002, 80)
                 for i in range(800)]
        counts = rss.distribution(flows)
        assert sum(counts) == 800
        assert all(count > 0 for count in counts)
        # Toeplitz over random-ish tuples is roughly balanced.
        assert max(counts) < 3 * min(counts)

    def test_same_flow_always_same_queue(self):
        rss = RssDistributor(queues=4)
        flow = FlowKey(IPProto.UDP, 123, 456, 789, 80)
        assert rss.queue_for(flow) == rss.queue_for(flow)

    def test_invalid_queue_count(self):
        with pytest.raises(ValueError):
            RssDistributor(queues=0)


class TestDmaModels:
    def packet(self, payload_len=1460):
        return build_udp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"p" * payload_len)

    def test_header_only_moves_far_fewer_bytes(self):
        packet = self.packet(8972)
        assert HEADER_ONLY_DMA.mem_bytes(packet) < FULL_DMA.mem_bytes(packet) / 5

    def test_full_dma_scales_with_payload(self):
        small, large = self.packet(100), self.packet(9000)
        assert FULL_DMA.mem_bytes(large) > FULL_DMA.mem_bytes(small) * 10

    def test_header_only_uses_nic_memory(self):
        packet = self.packet(1000)
        assert HEADER_ONLY_DMA.nic_memory_bytes(packet) == 1000
        assert FULL_DMA.nic_memory_bytes(packet) == 0

    def test_scatter_gather_list(self):
        sgl = ScatterGatherList()
        sgl.append(b"head")
        sgl.extend([b"body1", b"body2"])
        assert sgl.segment_count == 3
        assert sgl.total_bytes == 14
        assert sgl.linearize() == b"headbody1body2"


class TestQueues:
    def test_rx_queue_poll_batching(self):
        queue = RxQueue(0)
        for i in range(100):
            queue.push(build_udp("1.1.1.1", "2.2.2.2", 1, 2))
        batch = queue.poll(budget=32)
        assert len(batch) == 32
        assert len(queue) == 68

    def test_rx_queue_overflow_drops(self):
        queue = RxQueue(0, capacity=2)
        packet = build_udp("1.1.1.1", "2.2.2.2", 1, 2)
        assert queue.push(packet) and queue.push(packet)
        assert not queue.push(packet)
        assert queue.dropped == 1

    def test_hairpin_forwards_without_host(self):
        hairpin = HairpinQueue()
        packet = build_udp("1.1.1.1", "2.2.2.2", 1, 2)
        hairpin.push(packet)
        out = hairpin.drain()
        assert out == [packet]
        assert hairpin.forwarded == 1


class TestCycleAccount:
    def test_charge_and_breakdown(self):
        account = CycleAccount()
        account.charge(100, category="rx")
        account.charge(50, mem_bytes=1000, category="rx")
        account.charge(25, category="tx")
        assert account.cycles == 175
        assert account.mem_bytes == 1000
        assert account.breakdown == {"rx": 150, "tx": 25}

    def test_cpu_bound_throughput(self):
        account = CycleAccount()
        account.charge(1000)
        account.note_packet(1000)
        # 1 cycle per goodput byte on a 1 GHz core -> 8 Gbps.
        spec = CpuSpec("test", clock_hz=1e9, cores=4, mem_bw_bytes_per_sec=1e18)
        assert account.sustainable_goodput_bps(spec, cores=1) == pytest.approx(8e9)
        assert account.sustainable_goodput_bps(spec, cores=4) == pytest.approx(32e9)

    def test_memory_bound_throughput(self):
        account = CycleAccount()
        account.charge(1, mem_bytes=10_000)
        account.note_packet(1000)
        spec = CpuSpec("test", clock_hz=1e18, cores=1, mem_bw_bytes_per_sec=1e9)
        # 10 memory bytes per goodput byte -> 100 MB/s goodput -> 800 Mbps.
        assert account.sustainable_goodput_bps(spec) == pytest.approx(0.8e9)

    def test_min_of_bounds_wins(self):
        account = CycleAccount()
        account.charge(1000, mem_bytes=10_000)
        account.note_packet(1000)
        cpu_tight = CpuSpec("cpu", 1e9, 1, 1e18)
        mem_tight = CpuSpec("mem", 1e18, 1, 1e9)
        assert account.sustainable_goodput_bps(cpu_tight) < account.sustainable_goodput_bps(
            CpuSpec("fast", 1e18, 1, 1e18)
        )
        assert account.sustainable_goodput_bps(mem_tight) < account.sustainable_goodput_bps(
            CpuSpec("fast", 1e18, 1, 1e18)
        )

    def test_too_many_cores_rejected(self):
        with pytest.raises(ValueError):
            XEON_6554S.cycles_per_second(cores=37)

    def test_merge_accounts(self):
        a, b = CycleAccount(), CycleAccount()
        a.charge(10, category="x")
        a.note_packet(100)
        b.charge(20, mem_bytes=5, category="x")
        b.note_packet(200)
        a.merge(b)
        assert a.cycles == 30 and a.mem_bytes == 5
        assert a.packets == 2 and a.goodput_bytes == 300
        assert a.breakdown["x"] == 30

    def test_utilization(self):
        account = CycleAccount()
        account.charge(1000)
        account.note_packet(1000)  # 1 cycle/byte
        spec = CpuSpec("test", clock_hz=1e9, cores=1, mem_bw_bytes_per_sec=1e18)
        # 4 Gbps goodput -> 0.5e9 B/s -> 0.5e9 cycles -> 50 %.
        assert account.utilization_at_goodput(spec, 4e9) == pytest.approx(0.5)

    def test_presets_sane(self):
        assert XEON_6554S.cores == 36
        assert XEON_5512U.clock_hz < XEON_6554S.clock_hz

    def test_empty_account_yields_zero(self):
        assert CycleAccount().sustainable_goodput_bps(XEON_6554S) == 0.0
