"""Tests for metrics helpers and the experiment report."""

import pytest

from repro.analysis import (
    ExperimentReport,
    format_bps,
    geometric_mean,
    mean,
    percentile,
    size_histogram_summary,
    throughput_bps,
)


class TestMetrics:
    def test_throughput(self):
        assert throughput_bps(125_000_000, 1.0) == pytest.approx(1e9)
        with pytest.raises(ValueError):
            throughput_bps(1, 0)

    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1, -1])

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_histogram_summary(self):
        mean_size, modal = size_histogram_summary({9000: 9, 1500: 1})
        assert modal == 9000
        assert mean_size == pytest.approx(8250)
        assert size_histogram_summary({}) == (0.0, 0)


class TestFormatBps:
    @pytest.mark.parametrize("value,expected", [
        (1.45e12, "1.45 Tbps"),
        (208e9, "208.0 Gbps"),
        (50.1e9, "50.1 Gbps"),
        (100e6, "100.0 Mbps"),
        (500, "500 bps"),
    ])
    def test_formats(self, value, expected):
        assert format_bps(value) == expected


class TestExperimentReport:
    def test_rows_and_ratio(self):
        report = ExperimentReport("Figure 5a", "PXGW TCP throughput")
        row = report.add("PX throughput", paper=1.09e12, measured=1.05e12, unit="bps")
        assert row.ratio == pytest.approx(1.05 / 1.09, rel=1e-6)

    def test_within_tolerance(self):
        report = ExperimentReport("T", "t")
        report.add("x", paper=100.0, measured=104.0)
        assert report.within("x", 0.05)
        assert not report.within("x", 0.02)
        with pytest.raises(KeyError):
            report.within("missing", 0.1)

    def test_render_includes_all_rows(self):
        report = ExperimentReport("Figure 1a", "UPF")
        report.add("a", 1.0, 2.0)
        report.add("b", None, 3.0, note="no paper value")
        text = report.render()
        assert "Figure 1a" in text
        assert "2.00x" in text
        assert "no paper value" in text
