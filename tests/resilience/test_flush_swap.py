"""Regression: the delayed-merge flush timer across worker swaps.

The flush timer used to be judged against the *retired* worker's merge
engines: a standby swapped in mid-merge never got a flush tick (its
buffered bytes sat forever), and a stale armed timer could outlive the
worker it was armed for.  ``GatewayWorker.pending()`` plus the
cancel/re-arm in ``swap_worker`` are the fix; these tests pin it.
"""

from repro.core import Bound, GatewayConfig, GatewayWorker, PXGateway
from repro.net import Topology
from repro.workload import make_tcp_sources, make_udp_sources


def make_worker(index=0):
    return GatewayWorker(GatewayConfig(elephant_threshold_packets=1,
                                       hairpin_small_flows=False),
                         index=index)


def feed_mid_merge(worker, packets=3, payload=1448, at=0.0):
    """Leave *worker* holding a half-merged TCP stream."""
    source = make_tcp_sources(1, payload)[0]
    for index in range(packets):
        worker.process(source.next_packet(), Bound.INBOUND,
                       now=at + index * 1e-6)
    assert worker.merge.pending_bytes() > 0


def make_gateway():
    topo = Topology()
    gateway = PXGateway(topo.sim, "pxgw",
                        config=GatewayConfig(elephant_threshold_packets=1,
                                             hairpin_small_flows=False))
    topo.add_node(gateway)
    return topo, gateway


class TestWorkerPending:
    def test_reflects_tcp_merge_state(self):
        worker = make_worker()
        assert not worker.pending()
        feed_mid_merge(worker)
        assert worker.pending()
        worker.end_batch(now=1.0)  # everything has aged past the timeout
        assert not worker.pending()

    def test_reflects_caravan_state(self):
        worker = make_worker()
        source = make_udp_sources(1, 900)[0]
        for index in range(3):
            worker.process(source.next_packet(), Bound.INBOUND, now=index * 1e-6)
        assert worker.caravan_merge.pending_packets() > 0
        assert worker.pending()
        worker.end_batch(now=1.0)
        assert not worker.pending()


class TestSwapReArmsFlushTimer:
    def test_pending_standby_gets_a_flush_tick(self):
        topo, gateway = make_gateway()
        standby = make_worker(index=1)
        feed_mid_merge(standby)
        assert gateway._flush_handle is None

        gateway.swap_worker(standby)
        # The swap judged the timer against the NEW worker: armed.
        assert gateway._flush_handle is not None
        topo.run(until=0.05)
        # The tick flushed the standby's buffered stream and disarmed.
        assert not standby.pending()
        assert gateway._flush_handle is None

    def test_stale_timer_for_an_empty_standby_is_cancelled(self):
        topo, gateway = make_gateway()
        feed_mid_merge(gateway.worker)
        gateway._ensure_flush_timer()
        assert gateway._flush_handle is not None

        gateway.swap_worker(make_worker(index=1))
        # Nothing pending on the new worker: the stale timer is gone,
        # and running on does not resurrect it.
        assert gateway._flush_handle is None
        topo.run(until=0.05)
        assert gateway._flush_handle is None

    def test_swap_mid_merge_preserves_conservation(self):
        topo, gateway = make_gateway()
        standby = make_worker(index=1)
        feed_mid_merge(standby)
        fed = standby.stats.tcp_payload_in
        gateway.swap_worker(standby)
        topo.run(until=0.05)
        # The flush tick balanced the standby's books on its own.
        assert standby.stats.tcp_payload_out == fed
        assert not standby.stats.conservation_errors()
