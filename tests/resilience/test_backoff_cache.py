"""Retry primitives and the TTL'd PMTU cache."""

import random

import pytest

from repro.net.routing import RoutingTable
from repro.resilience import BackoffPolicy, PmtuCache, RetryBudget


class TestBackoffPolicy:
    def test_unjittered_delays_grow_and_cap(self):
        policy = BackoffPolicy(initial=0.2, multiplier=2.0, max_delay=1.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.8)
        assert policy.delay(4) == pytest.approx(1.0)  # capped
        assert policy.delay(10) == pytest.approx(1.0)

    def test_jitter_bounded_and_deterministic(self):
        policy = BackoffPolicy(initial=0.5, multiplier=1.0, max_delay=5.0, jitter=0.2)
        delays = [policy.delay(1, random.Random(7)) for _ in range(10)]
        # Same seed -> same jittered delay (replayable experiments).
        assert len(set(delays)) == 1
        samples = {policy.delay(1, random.Random(seed)) for seed in range(50)}
        assert all(0.4 <= d <= 0.6 for d in samples)
        assert len(samples) > 10  # jitter actually varies across seeds

    def test_exhaustion_is_attempt_based(self):
        policy = BackoffPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(initial=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            BackoffPolicy().delay(0)


class TestRetryBudget:
    def test_take_until_exhausted(self):
        budget = RetryBudget(3)
        assert budget.take() and budget.take() and budget.take()
        assert not budget.take()
        assert budget.remaining == 0
        assert budget.spent == 3

    def test_unaffordable_take_charges_nothing(self):
        budget = RetryBudget(2)
        assert not budget.take(3)
        assert budget.spent == 0
        assert budget.take(2)

    def test_rejects_empty_budget(self):
        with pytest.raises(ValueError):
            RetryBudget(0)


class TestPmtuCache:
    def test_learn_lookup_hit(self):
        cache = PmtuCache(default_ttl=10.0)
        cache.learn(0x0A000001, 1400, now=0.0, source="fpmtud")
        entry = cache.lookup(0x0A000001, now=5.0)
        assert entry is not None and entry.pmtu == 1400
        assert entry.source == "fpmtud"
        assert cache.hits == 1 and cache.misses == 0

    def test_ttl_expiry(self):
        cache = PmtuCache(default_ttl=10.0)
        cache.learn(1, 1400, now=0.0)
        assert cache.lookup(1, now=9.99) is not None
        assert cache.lookup(1, now=10.0) is None  # expires_at is exclusive
        assert cache.expirations == 1
        assert 1 not in cache

    def test_per_entry_ttl_overrides_default(self):
        cache = PmtuCache(default_ttl=100.0)
        cache.learn(1, 1400, now=0.0, ttl=1.0)
        assert cache.lookup(1, now=2.0) is None

    def test_invalidate_one_and_all(self):
        cache = PmtuCache()
        cache.learn(1, 1400, now=0.0)
        cache.learn(2, 1300, now=0.0)
        assert cache.invalidate(1) == 1
        assert cache.invalidate(1) == 0
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_implausible_pmtu_rejected(self):
        cache = PmtuCache()
        with pytest.raises(ValueError):
            cache.learn(1, 60, now=0.0)

    def test_route_change_flushes_watched_cache(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", None)
        cache = PmtuCache()
        cache.watch(table)
        cache.learn(1, 1400, now=0.0)
        table.add("192.0.2.0/24", None)
        assert len(cache) == 0, "route add must flush the cache"
        cache.learn(1, 1400, now=0.0)
        table.remove_prefix("192.0.2.0/24")
        assert len(cache) == 0, "route removal must flush the cache"
        cache.learn(1, 1400, now=0.0)
        table.remove_prefix("203.0.113.0/24")  # removes nothing
        assert len(cache) == 1, "a no-op removal must not flush"
        table.clear()
        assert len(cache) == 0
