"""Flow-state checkpoint/restore and standby-worker takeover."""

import pytest

from repro.core import Bound, GatewayConfig, GatewayWorker, PXGateway
from repro.net import Topology
from repro.resilience import (
    FailoverManager,
    checkpoint_worker,
    restore_worker,
)
from repro.workload import make_tcp_sources, make_udp_sources


def make_worker():
    return GatewayWorker(GatewayConfig(elephant_threshold_packets=1,
                                       hairpin_small_flows=False))


def feed_mid_merge(worker, packets=3, payload=1448):
    """Leave *worker* holding a half-merged TCP stream."""
    source = make_tcp_sources(1, payload)[0]
    fed = 0
    for index in range(packets):
        packet = source.next_packet()
        fed += len(packet.payload)
        worker.process(packet, Bound.INBOUND, now=index * 1e-6)
    assert worker.merge.pending_bytes() > 0
    return fed


class TestCheckpointRestore:
    def test_checkpoint_is_non_destructive(self):
        worker = make_worker()
        feed_mid_merge(worker)
        pending_before = worker.merge.pending_bytes()
        flows_before = len(worker.flows)
        checkpoint = checkpoint_worker(worker, now=1.0)
        # The live worker is untouched: same buffer, same flows, and
        # its conservation identities still balance.
        assert worker.merge.pending_bytes() == pending_before
        assert len(worker.flows) == flows_before
        assert not worker.stats.conservation_errors(
            pending_tcp_bytes=worker.merge.pending_bytes()
        )
        assert checkpoint.pending_tcp_bytes == pending_before
        assert checkpoint.taken_at == 1.0
        assert len(checkpoint.flows) == flows_before

    def test_restore_balances_standby_at_zero_buffered(self):
        worker = make_worker()
        fed = feed_mid_merge(worker)
        checkpoint = checkpoint_worker(worker, now=1.0)
        standby = make_worker()
        flushed = restore_worker(standby, checkpoint)
        assert sum(len(p.payload) for p in flushed) == fed
        # The standby's books balance with *empty* engines: in (from
        # the snapshot) == out (the re-emitted pending segments).
        assert standby.merge.pending_bytes() == 0
        assert not standby.stats.conservation_errors()
        assert standby.stats.tcp_payload_in == fed
        assert standby.stats.tcp_payload_out == fed
        # Flow records survived, so classifier verdicts survive too.
        assert len(standby.flows) == len(worker.flows)
        for restored, original in zip(standby.flows.snapshot(),
                                      worker.flows.snapshot()):
            assert restored == original

    def test_checkpoint_carries_caravan_contexts(self):
        worker = GatewayWorker(GatewayConfig(elephant_threshold_packets=1,
                                             hairpin_small_flows=False))
        source = make_udp_sources(1, 900)[0]
        for index in range(3):
            worker.process(source.next_packet(), Bound.INBOUND, now=index * 1e-6)
        assert worker.caravan_merge.pending_packets() > 0
        checkpoint = checkpoint_worker(worker, now=0.5)
        assert checkpoint.pending_datagrams == worker.caravan_merge.pending_packets()
        standby = make_worker()
        restore_worker(standby, checkpoint)
        assert not standby.stats.conservation_errors()

    def test_empty_worker_checkpoint_is_empty(self):
        checkpoint = checkpoint_worker(make_worker(), now=0.0)
        assert checkpoint.pending == []
        assert checkpoint.flows == []
        standby = make_worker()
        assert restore_worker(standby, checkpoint) == []
        assert not standby.stats.conservation_errors()


class TestFailoverManager:
    def make_world(self):
        topo = Topology()
        inside = topo.add_host("inside")
        outside = topo.add_host("outside")
        config = GatewayConfig(elephant_threshold_packets=1,
                               hairpin_small_flows=False)
        gateway = PXGateway(topo.sim, "gw", config=config)
        topo.add_node(gateway)
        topo.link(inside, gateway, mtu=9000, delay=5e-5)
        topo.link(gateway, outside, mtu=1500, delay=5e-5)
        topo.build_routes()
        _, gw_iface, _, _ = topo.edge(inside, gateway)
        gateway.mark_internal(gw_iface)
        return topo, inside, outside, gateway

    def test_takeover_requires_a_checkpoint(self):
        topo, _, _, gateway = self.make_world()
        manager = FailoverManager(gateway)
        with pytest.raises(RuntimeError):
            manager.takeover(fresh_checkpoint=False)
        with pytest.raises(ValueError):
            FailoverManager(gateway, interval=0.0)

    def test_periodic_checkpoints_run_on_the_sim_clock(self):
        topo, _, _, gateway = self.make_world()
        manager = FailoverManager(gateway, interval=0.05).start()
        topo.run(until=0.26)
        assert manager.checkpoints_taken == 6  # t=0 plus 5 ticks
        manager.stop()
        topo.run(until=0.5)
        assert manager.checkpoints_taken == 6

    def test_takeover_mid_merge_flushes_and_conserves(self):
        topo, inside, _, gateway = self.make_world()
        manager = FailoverManager(gateway, interval=0.05).start()

        source = make_tcp_sources(1, 1448, server_net="10.1.0")[0]

        def offer():
            for _ in range(3):
                packet = source.next_packet()
                packet.ip.dst = inside.ip
                for out in gateway.worker.process(packet, Bound.INBOUND,
                                                  now=topo.sim.now):
                    gateway.forward(out)

        topo.sim.schedule_at(0.02, offer)
        topo.run(until=0.03)
        old = gateway.worker
        assert old.merge.pending_bytes() > 0

        replaced = manager.takeover()  # planned: fresh checkpoint
        assert replaced is old
        assert gateway.worker is not old
        assert gateway.worker.index == old.index + 1
        # The standby starts balanced with empty engines; the old
        # worker is returned unperturbed (its buffers intact).
        assert gateway.worker.merge.pending_bytes() == 0
        assert not gateway.worker.stats.conservation_errors()
        assert old.merge.pending_bytes() > 0
        assert manager.takeovers == 1

        # Draining the sim delivers the flushed half-merged bytes to
        # the inside host (forwarded, not dropped) and the standby's
        # books stay balanced.
        topo.run(until=0.1)
        assert not gateway.worker.stats.conservation_errors(
            pending_tcp_bytes=gateway.worker.merge.pending_bytes()
        )

    def test_crash_takeover_resumes_from_last_periodic_capture(self):
        topo, inside, _, gateway = self.make_world()
        manager = FailoverManager(gateway, interval=0.05).start()
        topo.run(until=0.06)  # captures at t=0 and t=0.05
        taken_at = manager.last_checkpoint.taken_at

        source = make_tcp_sources(1, 1448, server_net="10.1.0")[0]
        for _ in range(2):  # arrives after the last capture
            packet = source.next_packet()
            packet.ip.dst = inside.ip
            gateway.worker.process(packet, Bound.INBOUND, now=topo.sim.now)

        manager.takeover(fresh_checkpoint=False)
        # The standby resumed from the stale capture: the post-capture
        # bytes are not replayed (end-to-end retransmission covers
        # them), and the standby still balances.
        assert manager.last_checkpoint.taken_at == taken_at
        assert gateway.worker.stats.tcp_payload_in == 0
        assert not gateway.worker.stats.conservation_errors()

    def test_failover_onto_smaller_standby_trims_to_capacity(self):
        # A standby provisioned with a smaller flow table must end up
        # at its own bound after adopting a bigger checkpoint — the
        # excess is evicted LRU-first, not silently carried over.
        worker = GatewayWorker(GatewayConfig(elephant_threshold_packets=1,
                                             hairpin_small_flows=False))
        sources = make_tcp_sources(10, 1448)
        for index, source in enumerate(sources):
            worker.process(source.next_packet(), Bound.INBOUND,
                           now=index * 1e-3)
        assert len(worker.flows) == 10
        checkpoint = checkpoint_worker(worker, now=0.02)

        standby = GatewayWorker(GatewayConfig(elephant_threshold_packets=1,
                                              hairpin_small_flows=False,
                                              flow_table_capacity=4))
        restore_worker(standby, checkpoint)
        assert len(standby.flows) == 4
        assert standby.flows.evictions == 6
        # The survivors are the most recently seen flows.
        kept = {state.key for state in standby.flows}
        expected = {record[0] for record in checkpoint.flows[-4:]}
        assert kept == expected
        assert not standby.stats.conservation_errors()

    def test_standby_inherits_resilience_hooks(self):
        topo, _, _, gateway = self.make_world()
        cache = gateway.attach_pmtu_cache()
        manager = FailoverManager(gateway).start()
        manager.takeover()
        assert gateway.worker.pmtu_cache is cache

    def test_summary_is_json_friendly(self):
        import json

        topo, _, _, gateway = self.make_world()
        manager = FailoverManager(gateway).start()
        summary = manager.summary()
        json.dumps(summary)
        assert summary["checkpoints_taken"] == 1
        assert summary["last_checkpoint"]["pending_packets"] == 0
