"""The gateway health state machine: signals, escalation, recovery."""

import pytest

from repro.core import Bound, GatewayConfig, PXGateway, WorkerMode
from repro.net import Topology
from repro.packet import TCPFlags, build_tcp
from repro.resilience import HealthMonitor, HealthPolicy, HealthState
from repro.workload import make_tcp_sources


def make_world(**config_kwargs):
    topo = Topology()
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    config = GatewayConfig(elephant_threshold_packets=2, **config_kwargs)
    gateway = PXGateway(topo.sim, "gw", config=config)
    topo.add_node(gateway)
    topo.link(inside, gateway, mtu=9000, delay=5e-5)
    topo.link(gateway, outside, mtu=1500, delay=5e-5)
    topo.build_routes()
    _, gw_iface, _, _ = topo.edge(inside, gateway)
    gateway.mark_internal(gw_iface)
    return topo, inside, outside, gateway


FAST = HealthPolicy(heartbeat_interval=0.01, degrade_after=1, bypass_after=3,
                    recover_after=2)


class TestPolicyValidation:
    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            HealthPolicy(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(degrade_after=0)
        with pytest.raises(ValueError):
            HealthPolicy(context_pressure=1.5)


class TestSignalsAndTransitions:
    def test_stall_degrades_then_recovers(self):
        topo, _, _, gateway = make_world()
        monitor = HealthMonitor(gateway, policy=FAST).start()
        topo.sim.schedule_at(0.05, gateway.stall, 0.035)
        topo.run(until=0.5)
        states = [(frm, to) for _, frm, to, _ in monitor.transitions]
        assert (HealthState.HEALTHY, HealthState.DEGRADED) in states
        assert monitor.state == HealthState.HEALTHY
        assert monitor.signal_counts.get("stall", 0) >= 1
        # The excursion closed, and within a small multiple of the stall.
        excursions = monitor.excursions()
        assert len(excursions) == 1
        left, back = excursions[0]
        assert back is not None and back - left < 0.2

    def test_long_stall_escalates_to_bypass(self):
        topo, _, _, gateway = make_world()
        monitor = HealthMonitor(gateway, policy=FAST).start()
        topo.sim.schedule_at(0.02, gateway.stall, 0.06)  # spans >3 beats
        topo.run(until=0.5)
        states = [to for _, _, to, _ in monitor.transitions]
        assert HealthState.BYPASS in states
        # Recovery steps down one level at a time: BYPASS -> DEGRADED
        # -> HEALTHY, never a direct jump.
        downs = [(frm, to) for _, frm, to, reason in monitor.transitions
                 if reason == "recovered"]
        assert (HealthState.BYPASS, HealthState.DEGRADED) in downs
        assert (HealthState.DEGRADED, HealthState.HEALTHY) in downs
        assert monitor.state == HealthState.HEALTHY

    def test_conservation_violation_degrades(self):
        topo, _, _, gateway = make_world()
        monitor = HealthMonitor(gateway, policy=FAST).start()
        # Plant a books-don't-balance corruption at t=0.05.
        def corrupt():
            gateway.worker.stats.tcp_payload_in += 999
        def repair():
            gateway.worker.stats.tcp_payload_in -= 999
        topo.sim.schedule_at(0.05, corrupt)
        topo.sim.schedule_at(0.10, repair)
        topo.run(until=0.5)
        assert monitor.signal_counts.get("conservation", 0) >= 1
        assert monitor.state == HealthState.HEALTHY

    def test_context_pressure_degrades_and_mode_switch_flushes(self):
        topo, inside, outside, gateway = make_world()
        monitor = HealthMonitor(gateway, policy=FAST).start()
        gateway.worker.merge.max_contexts = 1

        source = make_tcp_sources(1, 1448, server_net="10.1.0")[0]
        def offer():
            # Promote past the classifier, then leave a partial merge
            # buffered: occupancy hits 1/1 = 100% >= the 90% threshold.
            for _ in range(4):
                packet = source.next_packet()
                packet.ip.dst = inside.ip
                for out in gateway.worker.process(packet, Bound.INBOUND,
                                                  now=topo.sim.now):
                    pass
        topo.sim.schedule_at(0.005, offer)
        topo.run(until=0.3)
        assert monitor.signal_counts.get("context-pressure", 0) >= 1
        # Entering DEGRADED flushed the pending context (degradation
        # loses no bytes), which is also what clears the pressure.
        assert gateway.worker.merge.pending_bytes() == 0
        stats = gateway.worker.stats
        assert stats.tcp_payload_in == stats.tcp_payload_out
        assert monitor.state == HealthState.HEALTHY

    def test_nic_pressure_signal(self):
        topo, inside, _, gateway = make_world(header_only_dma=True)
        monitor = HealthMonitor(gateway, policy=FAST).start()
        gateway.worker.nic_memory_bytes = 0  # everything falls back

        source = make_tcp_sources(1, 1448, server_net="10.1.0")[0]
        def offer():
            for _ in range(4):
                packet = source.next_packet()
                packet.ip.dst = inside.ip
                gateway.worker.process(packet, Bound.INBOUND, now=topo.sim.now)
        topo.sim.schedule_at(0.005, offer)
        topo.run(until=0.1)
        assert monitor.signal_counts.get("nic-pressure", 0) >= 1

    def test_summary_is_json_friendly(self):
        import json

        topo, _, _, gateway = make_world()
        monitor = HealthMonitor(gateway, policy=FAST).start()
        topo.sim.schedule_at(0.02, gateway.stall, 0.03)
        topo.run(until=0.3)
        summary = monitor.summary()
        encoded = json.dumps(summary)
        assert "transitions" in encoded
        assert summary["beats"] > 0

    def test_stop_freezes_state(self):
        topo, _, _, gateway = make_world()
        monitor = HealthMonitor(gateway, policy=FAST).start()
        topo.run(until=0.05)
        beats = monitor.beats
        monitor.stop()
        topo.run(until=0.2)
        assert monitor.beats == beats


class TestWorkerModes:
    def test_degraded_disables_merge_but_conserves(self):
        from repro.core import GatewayWorker

        worker = GatewayWorker(GatewayConfig(elephant_threshold_packets=1,
                                             hairpin_small_flows=False))
        worker.set_mode(WorkerMode.DEGRADED, now=0.0)
        source = make_tcp_sources(1, 1448)[0]
        outs = []
        for index in range(10):
            outs.extend(worker.process(source.next_packet(), Bound.INBOUND,
                                       now=index * 1e-6))
        assert len(outs) == 10, "DEGRADED must pass every packet through"
        assert worker.merge.pending_bytes() == 0
        assert worker.stats.passthrough_packets == 10
        assert not worker.stats.conservation_errors()
        assert all(out.total_len <= 1500 for out in outs)

    def test_degraded_skips_mss_raise_keeps_cap(self):
        from repro.core import GatewayWorker

        worker = GatewayWorker(GatewayConfig())
        worker.set_mode(WorkerMode.DEGRADED, now=0.0)
        syn_in = build_tcp("9.9.9.9", "10.1.0.1", 1, 80, flags=TCPFlags.SYN, mss=1460)
        [out] = worker.process(syn_in, Bound.INBOUND)
        assert out.tcp.mss_option == 1460, "no raise while degraded"
        syn_out = build_tcp("10.1.0.1", "9.9.9.9", 80, 1, flags=TCPFlags.SYN, mss=8960)
        [out] = worker.process(syn_out, Bound.OUTBOUND)
        assert out.tcp.mss_option == 1460, "the cap is mandatory"

    def test_bypass_still_splits_and_opens(self):
        from repro.core import GatewayWorker, encode_caravan
        from repro.packet import build_udp

        worker = GatewayWorker(GatewayConfig())
        worker.set_mode(WorkerMode.BYPASS, now=0.0)
        jumbo = build_tcp("10.1.0.1", "9.9.9.9", 80, 1, payload=b"y" * 8948)
        outs = worker.process(jumbo, Bound.OUTBOUND)
        assert len(outs) > 1 and all(p.total_len <= 1500 for p in outs)

        members = [build_udp("10.1.0.1", "9.9.9.9", 53, 53, payload=b"a" * 100,
                             ip_id=10 + i) for i in range(3)]
        caravan = encode_caravan(members)
        outs = worker.process(caravan, Bound.OUTBOUND)
        assert len(outs) == 3, "BYPASS must still open caravans"
        assert worker.stats.bypassed_packets == 2
        assert not worker.stats.conservation_errors()

    def test_mode_switch_flush_returns_pending(self):
        from repro.core import GatewayWorker

        worker = GatewayWorker(GatewayConfig(elephant_threshold_packets=1,
                                             hairpin_small_flows=False))
        source = make_tcp_sources(1, 1448)[0]
        fed = 0
        for index in range(3):
            packet = source.next_packet()
            fed += len(packet.payload)
            worker.process(packet, Bound.INBOUND, now=index * 1e-6)
        assert worker.merge.pending_bytes() > 0
        flushed = worker.set_mode(WorkerMode.DEGRADED, now=1e-5)
        assert sum(len(p.payload) for p in flushed) == fed
        assert worker.merge.pending_bytes() == 0
        assert not worker.stats.conservation_errors()
        # Returning to NORMAL has nothing to flush.
        assert worker.set_mode(WorkerMode.NORMAL, now=2e-5) == []
        with pytest.raises(ValueError):
            worker.set_mode("bogus", now=0.0)
