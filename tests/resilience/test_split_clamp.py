"""Outbound splits clamp to the live PMTU-cache entry (satellite fix).

A flow whose MSS was negotiated before the path narrowed would keep
emitting eMTU segments the path silently blackholes; the split engine
must honor the freshest cached PMTU instead.
"""

from repro.core import Bound, GatewayConfig, GatewayWorker
from repro.packet import build_tcp
from repro.resilience import PmtuCache


def make_worker(default_ttl: float = 30.0):
    worker = GatewayWorker(GatewayConfig(hairpin_small_flows=False))
    cache = PmtuCache(default_ttl=default_ttl)
    worker.pmtu_cache = cache
    return worker, cache


def jumbo():
    return build_tcp("10.1.0.1", "9.9.9.9", 80, 1, payload=b"y" * 8948)


class TestSplitClamp:
    def test_split_respects_cached_pmtu(self):
        worker, cache = make_worker()
        packet = jumbo()
        cache.learn(packet.ip.dst, 1400, now=0.0, source="plpmtud")
        outs = worker.process(packet, Bound.OUTBOUND, now=0.5)
        assert len(outs) > 1
        assert max(out.total_len for out in outs) <= 1400
        assert worker.split.pmtu_clamped >= 1
        assert not worker.stats.conservation_errors()

    def test_no_entry_means_emtu(self):
        worker, _ = make_worker()
        outs = worker.process(jumbo(), Bound.OUTBOUND, now=0.0)
        assert max(out.total_len for out in outs) <= 1500
        # Without a clamp, splits fill the full eMTU.
        assert max(out.total_len for out in outs) > 1400
        assert worker.split.pmtu_clamped == 0

    def test_mid_stream_pmtu_drop_reclamps(self):
        worker, cache = make_worker()
        before = worker.process(jumbo(), Bound.OUTBOUND, now=0.0)
        assert max(out.total_len for out in before) > 1300
        cache.learn(jumbo().ip.dst, 1300, now=1.0, source="fpmtud")
        after = worker.process(jumbo(), Bound.OUTBOUND, now=1.5)
        assert max(out.total_len for out in after) <= 1300
        assert not worker.stats.conservation_errors()

    def test_expired_entry_reverts_to_emtu(self):
        worker, cache = make_worker(default_ttl=1.0)
        packet = jumbo()
        cache.learn(packet.ip.dst, 1300, now=0.0)
        clamped = worker.process(jumbo(), Bound.OUTBOUND, now=0.5)
        assert max(out.total_len for out in clamped) <= 1300
        reverted = worker.process(jumbo(), Bound.OUTBOUND, now=2.0)
        assert max(out.total_len for out in reverted) > 1300
        assert cache.lookup(packet.ip.dst, now=2.0) is None

    def test_limit_above_emtu_is_ignored(self):
        worker, cache = make_worker()
        packet = jumbo()
        cache.learn(packet.ip.dst, 8000, now=0.0)
        outs = worker.process(packet, Bound.OUTBOUND, now=0.1)
        assert max(out.total_len for out in outs) <= 1500
        assert worker.split.pmtu_clamped == 0

    def test_bypass_mode_also_clamps(self):
        from repro.core import WorkerMode

        worker, cache = make_worker()
        packet = jumbo()
        cache.learn(packet.ip.dst, 1280, now=0.0)
        worker.set_mode(WorkerMode.BYPASS, now=0.0)
        outs = worker.process(packet, Bound.OUTBOUND, now=0.2)
        assert max(out.total_len for out in outs) <= 1280
        assert not worker.stats.conservation_errors()
