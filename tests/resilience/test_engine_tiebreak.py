"""Same-timestamp event ordering: the simulator's sequence tie-breaker.

Seeded Netem delay faults routinely land two deliveries on the exact
same timestamp; without a total order on (time, seq) the heap would
fall through to comparing unorderable payloads and chaos replays would
stop being byte-identical.
"""

from repro.chaos import Fault, FaultPlan, Match, run_scenario
from repro.packet import IPProto
from repro.sim.engine import EventHandle, Simulator


class TestEventOrdering:
    def test_same_time_events_pop_fifo(self):
        sim = Simulator()
        order = []
        for index in range(10):
            sim.schedule_at(1.0, order.append, index)
        sim.run()
        assert order == list(range(10))

    def test_ties_break_by_insertion_not_time_alone(self):
        sim = Simulator()
        order = []
        sim.schedule_at(2.0, order.append, "late-first-inserted")
        sim.schedule_at(1.0, order.append, "early")
        sim.schedule_at(2.0, order.append, "late-second-inserted")
        sim.run()
        assert order == ["early", "late-first-inserted", "late-second-inserted"]

    def test_event_scheduled_during_tie_runs_after_existing_ties(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            # Zero-delay reschedule at the same timestamp: must run
            # after the already-queued same-time event, not before.
            sim.schedule(0.0, order.append, "chained")

        sim.schedule_at(1.0, first)
        sim.schedule_at(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second", "chained"]

    def test_cancelled_tie_member_is_skipped(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, order.append, 0)
        middle = sim.schedule_at(1.0, order.append, 1)
        sim.schedule_at(1.0, order.append, 2)
        middle.cancel()
        sim.run()
        assert order == [0, 2]

    def test_handles_are_totally_ordered(self):
        a = EventHandle(1.0, 0)
        b = EventHandle(1.0, 1)
        c = EventHandle(0.5, 7)
        assert c < a < b
        assert a <= b and b >= a and b > a and a >= a and a <= a
        assert sorted([b, c, a]) == [c, a, b]

    def test_handle_carries_time_and_seq(self):
        sim = Simulator()
        first = sim.schedule_at(3.0, lambda: None)
        second = sim.schedule_at(3.0, lambda: None)
        assert (first.time, second.time) == (3.0, 3.0)
        assert second.seq > first.seq


class TestDelayFaultReplay:
    def test_identical_timestamp_delay_deliveries_replay_byte_identical(self):
        # Two delay faults with the *same* hold-back on the same link:
        # the re-injected packets collide on one timestamp, which is
        # exactly where an unstable tie-break would diverge.
        plan = FaultPlan()
        for nth in (2, 3):
            plan.link_faults.append(Fault(
                action="delay",
                link="ext_in",
                match=Match(protocol=IPProto.TCP, min_payload=1),
                nth=nth,
                count=2,
                delay=2e-3,
            ))
        first = run_scenario("tcp", 4242, plan=plan)
        second = run_scenario("tcp", 4242, plan=plan)
        assert first.digest == second.digest
        assert first.violations == second.violations
        assert first.faults_fired == second.faults_fired
