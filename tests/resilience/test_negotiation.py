"""Caravan capability negotiation: probe, ack, negative cache, expiry."""

import pytest

from repro.core import GatewayConfig, PXGateway
from repro.net import Topology
from repro.resilience import CaravanNegotiator
from repro.resilience.negotiation import (
    pack_cap_ack,
    pack_cap_query,
    parse_cap_ack,
    parse_cap_query,
)
from repro.resilience.retry import BackoffPolicy


def make_world(enable_stack=True, negotiation=True, **negotiator_kwargs):
    topo = Topology()
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    gateway = PXGateway(topo.sim, "gw", config=GatewayConfig())
    topo.add_node(gateway)
    topo.link(inside, gateway, mtu=9000, delay=5e-5)
    topo.link(gateway, outside, mtu=1500, delay=5e-5)
    topo.build_routes()
    _, gw_iface, _, _ = topo.edge(inside, gateway)
    gateway.mark_internal(gw_iface)
    if enable_stack:
        inside.enable_caravan_stack(9000)
    negotiator = None
    if negotiation:
        negotiator_kwargs.setdefault("backoff", BackoffPolicy(
            initial=0.05, multiplier=2.0, max_delay=0.5, jitter=0.0, max_attempts=2
        ))
        negotiator_kwargs.setdefault("query_timeout", 0.1)
        negotiator = CaravanNegotiator(gateway, **negotiator_kwargs)
        gateway.worker.caravan_gate = negotiator.allow_caravan
    return topo, inside, outside, gateway, negotiator


class TestWireFormat:
    def test_query_roundtrip(self):
        assert parse_cap_query(pack_cap_query(42)) == 42
        assert parse_cap_query(b"nope") is None
        assert parse_cap_query(pack_cap_ack(1, 9000)) is None

    def test_ack_roundtrip(self):
        assert parse_cap_ack(pack_cap_ack(7, 9000)) == (7, 9000)
        assert parse_cap_ack(b"PXCA\x00") is None
        assert parse_cap_ack(pack_cap_query(7)) is None

    def test_validation(self):
        topo, _, _, gateway, _ = make_world(negotiation=False)
        with pytest.raises(ValueError):
            CaravanNegotiator(gateway, negative_ttl=0.0)


class TestNegotiation:
    def test_capable_peer_flips_to_positive(self):
        topo, inside, _, gateway, negotiator = make_world()
        now = topo.sim.now
        # First ask: unknown -> fail safe, kick off the query.
        assert negotiator.allow_caravan(inside.ip, now) is False
        assert negotiator.capability(inside.ip, now) is None
        topo.run(until=0.05)  # one RTT
        assert negotiator.capability(inside.ip, topo.sim.now) is True
        assert negotiator.allow_caravan(inside.ip, topo.sim.now) is True
        assert negotiator.acks_received == 1
        assert negotiator._positive[inside.ip][0] == 9000  # learned iMTU

    def test_silent_peer_lands_in_negative_cache(self):
        topo, inside, _, gateway, negotiator = make_world(enable_stack=False)
        assert negotiator.allow_caravan(inside.ip, topo.sim.now) is False
        topo.run(until=1.0)  # timeout, one backoff retry, timeout
        assert negotiator.capability(inside.ip, topo.sim.now) is False
        assert negotiator.negative_verdicts == 1
        assert negotiator.queries_sent == 2  # initial + one retry
        # While negative, asks are suppressed without new probes.
        sent = negotiator.queries_sent
        assert negotiator.allow_caravan(inside.ip, topo.sim.now) is False
        topo.run(until=1.2)
        assert negotiator.queries_sent == sent

    def test_negative_cache_expiry_reprobes_upgraded_peer(self):
        topo, inside, _, gateway, negotiator = make_world(
            enable_stack=False, negative_ttl=0.5
        )
        negotiator.allow_caravan(inside.ip, topo.sim.now)
        topo.run(until=0.5)  # verdict lands ~0.25, TTL runs to ~0.75
        assert negotiator.capability(inside.ip, topo.sim.now) is False
        # The peer upgrades mid-deployment...
        inside.enable_caravan_stack(9000)
        topo.run(until=1.0)  # ...the negative verdict expires...
        assert negotiator.capability(inside.ip, topo.sim.now) is None
        assert negotiator.allow_caravan(inside.ip, topo.sim.now) is False
        topo.run(until=1.2)  # ...and the re-probe discovers it.
        assert negotiator.capability(inside.ip, topo.sim.now) is True

    def test_positive_entry_expires(self):
        topo, inside, _, gateway, negotiator = make_world(positive_ttl=0.5)
        negotiator.allow_caravan(inside.ip, topo.sim.now)
        topo.run(until=0.1)
        assert negotiator.allow_caravan(inside.ip, topo.sim.now) is True
        topo.run(until=0.7)
        # Expired: back to unknown (fail safe) and a fresh probe.
        assert negotiator.allow_caravan(inside.ip, topo.sim.now) is False
        topo.run(until=0.8)
        assert negotiator.allow_caravan(inside.ip, topo.sim.now) is True

    def test_unroutable_peer_fails_safe_immediately(self):
        topo, inside, _, gateway, negotiator = make_world()
        from repro.packet import str_to_ip

        stranger = str_to_ip("203.0.113.99")
        assert negotiator.allow_caravan(stranger, topo.sim.now) is False
        assert negotiator.capability(stranger, topo.sim.now) is False
        assert negotiator.negative_verdicts == 1


class TestEndToEnd:
    def test_datagrams_flow_plain_then_bundled(self):
        topo, inside, outside, gateway, negotiator = make_world()
        received = []
        inside.on_udp(4433, lambda p, h: received.append(p.payload))

        def burst():
            for index in range(8):
                outside.send_udp(inside.ip, 4433, 4433,
                                 payload=bytes([index]) * 700)

        # Burst 1 while the peer's capability is unknown: every
        # datagram is delivered (fail safe), none bundled.
        topo.sim.schedule_at(0.01, burst)
        topo.run(until=0.2)
        assert len(received) == 8
        assert gateway.stats.caravans_built == 0
        assert gateway.stats.caravans_suppressed >= 1
        assert negotiator.capability(inside.ip, topo.sim.now) is True

        # Burst 2 with a positive verdict: bundling kicks in and the
        # datagrams still arrive intact.
        topo.sim.schedule_at(0.3, burst)
        topo.run(until=0.6)
        assert len(received) == 16
        assert gateway.stats.caravans_built >= 1
        assert not gateway.stats.conservation_errors(
            pending_datagrams=gateway.worker.caravan_merge.pending_packets()
        )
