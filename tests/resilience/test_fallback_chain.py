"""The PMTU discovery fallback chain: F-PMTUD → PLPMTUD → 1500 B.

An ICMP *and* fragment blackhole used to hang F-PMTUD forever; the
chain must converge on every path, just sometimes slowly.
"""

from repro.net import Topology
from repro.pmtud import FPmtudDaemon, Plpmtud, ProbeEchoDaemon
from repro.resilience import (
    CONSERVATIVE_PMTU,
    BackoffPolicy,
    PmtuCache,
    ResilientPmtud,
)


def chain_topology(mtus, filter_at=None, icmp_blackhole=False):
    """client - r0 - r1 - ... - server; ``mtus[i]`` is link i's MTU.

    ``filter_at`` names the router (by index) that silently drops IP
    fragments — the classic PMTUD-hostile middlebox.
    """
    topo = Topology()
    client = topo.add_host("client")
    server = topo.add_host("server")
    routers = [
        topo.add_router(
            f"r{index}",
            icmp_blackhole=icmp_blackhole,
            filter_fragments=(filter_at == index),
        )
        for index in range(len(mtus) - 1)
    ]
    chain = [client] + routers + [server]
    for index, mtu in enumerate(mtus):
        topo.link(chain[index], chain[index + 1], mtu=mtu, delay=0.0005)
    topo.build_routes()
    return topo, client, server


def make_resilient(client, **kwargs):
    kwargs.setdefault("backoff", BackoffPolicy(
        initial=0.05, multiplier=2.0, max_delay=0.2, jitter=0.0, max_attempts=2
    ))
    kwargs.setdefault("fpmtud_timeout", 0.2)
    kwargs.setdefault("plpmtud", Plpmtud(client, probe_timeout=0.2))
    return ResilientPmtud(client, **kwargs)


class TestFallbackChain:
    def test_fpmtud_happy_path(self):
        topo, client, server = chain_topology([9000, 1400, 9000])
        FPmtudDaemon(server)
        resolver = make_resilient(client)
        outcomes = []
        resolver.discover(server.ip, 9000, outcomes.append)
        topo.run(until=5.0)
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.source == "fpmtud"
        assert 1392 <= outcome.pmtu <= 1400  # 8 B fragment alignment
        assert outcome.fpmtud_timeouts == 0
        assert resolver.fpmtud_successes == 1
        entry = resolver.cache.lookup(server.ip, topo.sim.now)
        assert entry is not None and entry.source == "fpmtud"

    def test_fragment_blackhole_falls_back_to_plpmtud(self):
        # r0 fragments the jumbo probe onto the 1400 B segment; r1
        # silently eats the fragments.  F-PMTUD can never hear back,
        # but PLPMTUD's small DF probes sail through.
        topo, client, server = chain_topology([9000, 1400, 1400], filter_at=1)
        FPmtudDaemon(server)
        ProbeEchoDaemon(server)
        resolver = make_resilient(client)
        outcomes = []
        resolver.discover(server.ip, 9000, outcomes.append)
        topo.run(until=30.0)
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.source == "plpmtud"
        assert 1392 <= outcome.pmtu <= 1400
        assert outcome.fpmtud_attempts == 2  # retried, then gave up
        assert outcome.fpmtud_timeouts == 2
        assert "plpmtud-start" in outcome.trail
        assert resolver.plpmtud_fallbacks == 1

    def test_total_blackhole_converges_conservative(self):
        # No daemons at all: F-PMTUD times out, PLPMTUD's search never
        # sees an ack (its floor is a guess, not a measurement), and
        # the chain must still converge instead of hanging.
        topo, client, server = chain_topology([9000, 1400, 1400], filter_at=1)
        resolver = make_resilient(client, cache=PmtuCache(default_ttl=1000.0))
        outcomes = []
        resolver.discover(server.ip, 9000, outcomes.append)
        topo.run(until=60.0)
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.source == "fallback"
        assert outcome.pmtu == CONSERVATIVE_PMTU
        assert "plpmtud-blackhole" in outcome.trail
        assert resolver.conservative_fallbacks == 1
        entry = resolver.cache.lookup(server.ip, topo.sim.now)
        assert entry is not None and entry.source == "fallback"

    def test_fallback_caps_at_local_mtu(self):
        topo, client, server = chain_topology([1400, 1400], filter_at=0)
        resolver = make_resilient(client)
        outcomes = []
        resolver.discover(server.ip, 1400, outcomes.append)
        topo.run(until=60.0)
        assert outcomes and outcomes[0].pmtu == 1400  # min(1500, local)

    def test_probe_budget_short_circuits_retries(self):
        topo, client, server = chain_topology([9000, 1400, 1400], filter_at=1)
        ProbeEchoDaemon(server)
        resolver = make_resilient(
            client,
            backoff=BackoffPolicy(initial=0.05, jitter=0.0, max_attempts=4),
            probe_budget=1,
        )
        outcomes = []
        resolver.discover(server.ip, 9000, outcomes.append)
        topo.run(until=30.0)
        assert outcomes and outcomes[0].fpmtud_attempts == 1
        assert "fpmtud-budget-exhausted" in outcomes[0].trail

    def test_cache_short_circuit_and_waiter_coalescing(self):
        topo, client, server = chain_topology([9000, 1400, 9000])
        FPmtudDaemon(server)
        resolver = make_resilient(client)
        outcomes = []
        # Two requests while the first is in flight: one probe, both
        # callbacks fire with the same converged outcome.
        resolver.discover(server.ip, 9000, outcomes.append)
        resolver.discover(server.ip, 9000, outcomes.append)
        topo.run(until=5.0)
        assert len(outcomes) == 2
        assert outcomes[0] is outcomes[1]
        assert resolver.discoveries == 1
        # A third request after convergence is answered synchronously.
        resolver.discover(server.ip, 9000, outcomes.append)
        assert len(outcomes) == 3
        assert outcomes[2].trail == ["cache-hit"]
        assert resolver.cache_short_circuits == 1

    def test_force_bypasses_cache(self):
        topo, client, server = chain_topology([9000, 1400, 9000])
        FPmtudDaemon(server)
        resolver = make_resilient(client, cache=PmtuCache(default_ttl=1000.0))
        outcomes = []
        resolver.discover(server.ip, 9000, outcomes.append)
        topo.run(until=5.0)
        resolver.discover(server.ip, 9000, outcomes.append, force=True)
        topo.run(until=10.0)
        assert len(outcomes) == 2
        assert outcomes[1].trail != ["cache-hit"]
        assert resolver.discoveries == 2
