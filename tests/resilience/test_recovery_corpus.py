"""Bounded recovery across the whole PR-1 chaos corpus.

Every fault class the chaos harness can inject — link drop, duplicate,
reorder, corrupt, truncate, delay; gateway stall, eviction storm, NIC
memory exhaustion — must leave the gateway back in HEALTHY by the end
of the scenario, with every health excursion closed within bounded
sim-time.  This is the resilience layer's end-to-end acceptance gate.
"""

import pytest

from repro.chaos import corpus, run_scenario

from ..chaos.conftest import failure_report

CORPUS = corpus()

#: The maximum sim-time any single health excursion may stay open.
MAX_EXCURSION = 1.0


@pytest.mark.parametrize(
    "profile,seed", CORPUS, ids=[f"{profile}-{seed}" for profile, seed in CORPUS]
)
def test_scenario_recovers_to_healthy(profile, seed):
    result = run_scenario(profile, seed)
    assert result.ok, failure_report(result)
    health = result.notes.get("health")
    assert health is not None, "scenarios must attach a health monitor"
    assert health["state"] == "healthy", failure_report(result)
    for left_at, returned_at in health["excursions"]:
        assert returned_at is not None, (
            f"excursion opened at {left_at} never closed: {health}"
        )
        assert returned_at - left_at <= MAX_EXCURSION, (
            f"recovery took {returned_at - left_at:.3f}s (> {MAX_EXCURSION}s): {health}"
        )
    # No violation may be a recovery violation (the oracle's check 5
    # runs inside the scenario; belt and braces here).
    assert not [v for v in result.violations if v.startswith("recovery:")]


def test_corpus_recovery_checks_are_not_vacuous():
    """At least some corpus scenarios actually leave HEALTHY — if none
    did, the recovery assertions above would be passing on silence."""
    transitions = 0
    for profile, seed in CORPUS[:16]:
        health = run_scenario(profile, seed).notes["health"]
        transitions += len(health["transitions"])
    assert transitions > 0
