"""Unit tests for the fault DSL and the oracle's building blocks."""

import pytest

from repro.chaos import (
    Fault,
    FaultLog,
    FaultPlan,
    GatewayFault,
    LinkInjector,
    Match,
    summarize_packet,
    trace_digest,
)
from repro.chaos.oracle import ChaosTap, InvariantOracle, _interval_add, _interval_contains
from repro.packet import IPProto, TCPFlags, build_tcp, build_udp, fragment_packet


def tcp_packet(payload=b"x" * 100, seq=1000, src_port=1234, dst_port=80):
    return build_tcp(
        "10.0.0.1",
        "10.1.0.1",
        src_port,
        dst_port,
        payload=payload,
        seq=seq,
        flags=TCPFlags.ACK,
    )


def udp_packet(payload=b"y" * 400, src_port=5000, dst_port=6000):
    return build_udp("10.0.0.1", "10.1.0.1", src_port, dst_port, payload=payload)


class TestMatch:
    def test_protocol_and_ports(self):
        match = Match(protocol=IPProto.TCP, dst_port=80)
        assert match.matches(tcp_packet())
        assert not match.matches(tcp_packet(dst_port=443))
        assert not match.matches(udp_packet())

    def test_min_payload_excludes_pure_acks(self):
        match = Match(protocol=IPProto.TCP, min_payload=1)
        assert match.matches(tcp_packet())
        assert not match.matches(tcp_packet(payload=b""))

    def test_fragments_opt_in(self):
        fragments = fragment_packet(udp_packet(payload=b"z" * 3000), mtu=1500)
        assert len(fragments) > 1
        assert not Match(protocol=IPProto.UDP).matches(fragments[0])
        assert Match(fragments=True).matches(fragments[0])


class TestFaultValidation:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            Fault("explode", "ext_in")

    def test_rejects_zero_nth(self):
        with pytest.raises(ValueError):
            Fault("drop", "ext_in", nth=0)

    def test_rejects_unknown_gateway_kind(self):
        with pytest.raises(ValueError):
            GatewayFault("meltdown", at=0.1)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            GatewayFault("stall", at=0.1, duration=0.0)


class TestLinkInjector:
    def test_drop_hits_exactly_the_nth_match(self):
        fault = Fault("drop", "l", Match(protocol=IPProto.TCP), nth=2)
        injector = LinkInjector([fault])
        first = injector.apply(tcp_packet(seq=1), 0.0)
        second = injector.apply(tcp_packet(seq=2), 0.0)
        third = injector.apply(tcp_packet(seq=3), 0.0)
        assert [len(out) for out in (first, second, third)] == [1, 0, 1]
        assert injector.log.tcp_packets_dropped == 1
        assert injector.log.faults_fired == 1

    def test_duplicate_emits_delayed_copy(self):
        fault = Fault("duplicate", "l", Match(protocol=IPProto.UDP), delay=1e-3)
        out = LinkInjector([fault]).apply(udp_packet(), 0.0)
        assert len(out) == 2
        assert out[0][1] == 0.0 and out[1][1] == 1e-3
        assert out[0][0] is not out[1][0]  # independent copies

    def test_corrupt_udp_flips_and_marks(self):
        fault = Fault("corrupt", "l", Match(protocol=IPProto.UDP))
        injector = LinkInjector([fault])
        original = udp_packet(payload=b"\x00" * 10)
        [(mutated, _)] = injector.apply(original, 0.0)
        assert mutated.payload[0] == 0xFF
        assert mutated.meta.get("chaos_corrupted")
        assert injector.log.udp_datagrams_mutated == 1

    def test_corrupt_tcp_becomes_a_drop(self):
        fault = Fault("corrupt", "l", Match(protocol=IPProto.TCP))
        injector = LinkInjector([fault])
        assert injector.apply(tcp_packet(), 0.0) == []
        assert injector.log.tcp_packets_dropped == 1

    def test_truncate_fixes_lengths(self):
        fault = Fault("truncate", "l", Match(protocol=IPProto.UDP), truncate_to=8)
        [(mutated, _)] = LinkInjector([fault]).apply(udp_packet(), 0.0)
        assert len(mutated.payload) == 8
        assert mutated.udp.length == 16
        assert mutated.ip.total_length == mutated.ip.header_len + 8 + 8
        assert mutated.meta.get("chaos_truncated")

    def test_first_matching_fault_wins(self):
        drop = Fault("drop", "l", Match(protocol=IPProto.TCP), nth=1)
        delay = Fault("delay", "l", Match(protocol=IPProto.TCP), nth=1)
        injector = LinkInjector([drop, delay])
        assert injector.apply(tcp_packet(), 0.0) == []
        # The second fault never saw the packet: its counter is untouched.
        assert injector._seen == [1, 0]


class TestFaultPlan:
    def make_plan(self):
        return FaultPlan(
            link_faults=[
                Fault("drop", "a"),
                Fault("delay", "b"),
            ],
            gateway_faults=[GatewayFault("stall", at=0.1)],
        )

    def test_len_and_describe(self):
        plan = self.make_plan()
        assert len(plan) == 3
        assert "drop@a" in plan.describe()
        assert "stall@t=0.1s" in plan.describe()
        assert FaultPlan().describe() == "(no faults)"

    def test_without_indexes_links_then_gateway(self):
        plan = self.make_plan()
        assert len(plan.without(0).link_faults) == 1
        assert plan.without(2).gateway_faults == []
        assert len(plan) == 3  # original untouched

    def test_subset(self):
        plan = self.make_plan()
        kept = plan.subset([0, 2])
        assert [f.action for f in kept.link_faults] == ["drop"]
        assert [f.kind for f in kept.gateway_faults] == ["stall"]

    def test_injectors_group_by_link_and_share_log(self):
        plan = self.make_plan()
        log = FaultLog()
        injectors = plan.injectors(log)
        assert set(injectors) == {"a", "b"}
        assert injectors["a"].log is injectors["b"].log is log


class TestOracleBuildingBlocks:
    def test_summary_ignores_ip_identification(self):
        a, b = tcp_packet(), tcp_packet()
        assert a.ip.identification != b.ip.identification
        assert summarize_packet(a) == summarize_packet(b)

    def test_summary_sees_chaos_marks(self):
        marked = udp_packet()
        marked.meta["chaos_corrupted"] = True
        assert summarize_packet(marked) != summarize_packet(udp_packet())

    def test_interval_merge_and_containment(self):
        intervals = []
        _interval_add(intervals, 0, 100)
        _interval_add(intervals, 200, 300)
        _interval_add(intervals, 100, 200)  # bridges the gap
        assert intervals == [[0, 300]]
        assert _interval_contains(intervals, 50, 250)
        assert not _interval_contains(intervals, 250, 350)

    def test_trace_digest_is_order_stable(self):
        tap_a, tap_b = ChaosTap("a"), ChaosTap("b")
        tap_a("rx", tcp_packet(), 0.5)
        tap_b("tx", udp_packet(), 0.25)
        assert trace_digest([tap_a, tap_b]) == trace_digest([tap_b, tap_a])

    def test_expect_records_violations(self):
        oracle = InvariantOracle()
        assert oracle.expect(True, "x", "fine")
        assert not oracle.expect(False, "mtu", "too big")
        assert oracle.checks_run == 2
        assert oracle.violations == ["mtu: too big"]
        assert not oracle.ok

    def test_seq_coverage_flags_unreceived_bytes(self):
        ingress, egress = ChaosTap("in"), ChaosTap("out")
        ingress("rx", tcp_packet(seq=0, payload=b"x" * 100), 0.001)
        # Emitting [0, 100) is fine; emitting [100, 200) was never seen.
        egress("tx", tcp_packet(seq=0, payload=b"x" * 100), 0.002)
        egress("tx", tcp_packet(seq=100, payload=b"x" * 100), 0.003)
        oracle = InvariantOracle()
        oracle.check_tcp_seq_coverage(ingress, egress)
        assert len(oracle.violations) == 1
        assert oracle.violations[0].startswith("tcp-seq-coverage")

    def test_datagram_budgets(self):
        oracle = InvariantOracle()
        oracle.check_datagram_flow("f", [b"a", b"b"], [b"a"], loss_budget=1)
        assert oracle.ok
        oracle.check_datagram_flow("g", [b"a"], [b"a", b"zzz"])
        assert any(v.startswith("datagram-boundary") for v in oracle.violations)
