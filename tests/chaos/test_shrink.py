"""Shrinking: a failing schedule minimizes to the faults that matter."""

import pytest

from repro.chaos import Fault, FaultPlan, GatewayFault, Match, shrink_plan
from repro.packet import IPProto

from .mutations import break_merge

# The one fault that actually exposes the planted merge bug (seed 11:
# the seed's own netem never reorders, so the bug needs this nudge).
TRIGGER = Fault("drop", "ext_in", Match(protocol=IPProto.TCP, min_payload=1), nth=8)

# Chaff: faults that never fire (match counters far beyond the traffic,
# or protocols the tcp profile never carries) plus a harmless stall.
CHAFF = [
    Fault("delay", "ext_in", Match(protocol=IPProto.TCP, min_payload=1), nth=400),
    Fault("drop", "int_out", Match(protocol=IPProto.UDP, min_payload=1), nth=1),
    Fault("duplicate", "ext_in", Match(protocol=IPProto.TCP, min_payload=1), nth=350),
]


def test_shrinks_to_the_single_triggering_fault():
    plan = FaultPlan(
        link_faults=[CHAFF[0], TRIGGER, CHAFF[1], CHAFF[2]],
        gateway_faults=[GatewayFault("stall", at=0.3, duration=1e-3)],
    )
    shrunk = shrink_plan("tcp", 11, plan, mutate=break_merge)

    assert len(shrunk.plan) == 1
    assert shrunk.plan.link_faults == [TRIGGER]
    assert shrunk.plan.gateway_faults == []
    assert shrunk.removed == 4
    assert shrunk.minimal
    assert not shrunk.result.ok
    assert shrunk.runs <= 20  # ddmin, not brute force


def test_shrink_refuses_a_passing_plan():
    benign = FaultPlan(link_faults=[CHAFF[0]])
    with pytest.raises(ValueError):
        shrink_plan("tcp", 11, benign)


def test_shrink_with_custom_predicate():
    """Shrinking against a predicate other than 'any violation': keep
    only what is needed to fire the tcp-seq-coverage invariant."""
    plan = FaultPlan(link_faults=[TRIGGER, CHAFF[0]])

    def emits_unreceived_bytes(result):
        return any(v.startswith("tcp-seq-coverage") for v in result.violations)

    shrunk = shrink_plan(
        "tcp", 11, plan, still_fails=emits_unreceived_bytes, mutate=break_merge
    )
    assert shrunk.plan.link_faults == [TRIGGER]
    assert any(
        violation.startswith("tcp-seq-coverage")
        for violation in shrunk.result.violations
    )
