"""Regression: the flush timer during a gateway stall window.

A stalled gateway used to re-arm ``_flush_handle`` every merge-timeout
tick for the whole stall — a busy loop burning simulator events while
emitting nothing.  Now the tick that lands inside the window goes
silent (no flush, no re-arm) and ``_drain_stalled`` flushes exactly
once on resume.
"""

from repro.core import Bound, GatewayConfig, GatewayWorker, PXGateway
from repro.net import Topology
from repro.workload import make_tcp_sources

_CONFIG = GatewayConfig(elephant_threshold_packets=1, hairpin_small_flows=False)


def make_stalled_gateway(stall=0.5):
    topo = Topology()
    gateway = PXGateway(topo.sim, "pxgw", config=_CONFIG)
    topo.add_node(gateway)
    source = make_tcp_sources(1, 1448)[0]
    for index in range(3):
        gateway.worker.process(source.next_packet(), Bound.INBOUND,
                               now=index * 1e-6)
    assert gateway.worker.pending()
    gateway._ensure_flush_timer()
    assert gateway._flush_handle is not None
    gateway.stall(stall)
    return topo, gateway


def test_no_flush_and_no_rearm_while_stalled():
    topo, gateway = make_stalled_gateway(stall=0.5)
    topo.run(until=0.49)
    # The one armed tick fired inside the window, emitted nothing, and
    # did not re-arm: the merge buffer still holds the whole stream.
    assert gateway._flush_handle is None
    assert gateway.worker.pending()
    assert gateway.worker.stats.tcp_payload_out == 0


def test_stall_window_is_not_a_busy_loop():
    # With a 0.5 s stall and a 500 µs merge timeout the old behaviour
    # re-armed ~1000 ticks; the fix leaves a handful of events total
    # (the single tick plus the drain).
    topo, gateway = make_stalled_gateway(stall=0.5)
    before = topo.sim.events_processed
    topo.run(until=0.49)
    assert topo.sim.events_processed - before <= 5


def test_resume_flushes_exactly_once():
    topo, gateway = make_stalled_gateway(stall=0.5)
    fed = gateway.worker.stats.tcp_payload_in
    topo.run(until=0.6)
    # _drain_stalled flushed the aged contexts on resume; with nothing
    # left pending the timer stays disarmed.
    assert gateway.worker.stats.tcp_payload_out == fed
    assert not gateway.worker.pending()
    assert gateway._flush_handle is None
    assert not gateway.worker.stats.conservation_errors()


def test_resume_with_no_backlog_stays_silent():
    topo = Topology()
    gateway = PXGateway(topo.sim, "pxgw", config=_CONFIG)
    topo.add_node(gateway)
    gateway.stall(0.1)
    topo.run(until=0.3)
    assert gateway._flush_handle is None
    assert not gateway.worker.pending()
