"""Determinism: the whole chaos pipeline is a pure function of the seed.

Running the same (profile, seed) twice in one process must produce the
identical packet-trace digest, the identical oracle verdict, and the
identical fault accounting — this is what makes a red corpus entry
reproducible and shrinkable.
"""

import pytest

from repro.chaos import PROFILES, build_plan, build_world, run_scenario, trace_digest

SEEDS = (11, 205)


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_identical_run(profile, seed):
    first = run_scenario(profile, seed)
    second = run_scenario(profile, seed)
    assert first.digest == second.digest
    assert first.violations == second.violations
    assert first.faults_fired == second.faults_fired
    assert first.checks_run == second.checks_run
    assert first.notes == second.notes


def test_plan_building_is_pure():
    for profile in PROFILES:
        a = build_plan(profile, 77)
        b = build_plan(profile, 77)
        assert a.describe() == b.describe()
        assert len(a) == len(b)


def test_world_building_is_deterministic():
    """Two worlds from one seed run the same workload-free simulation:
    identical topology yields an identical (empty) trace digest, and the
    netem/bottleneck choices derived from the seed agree."""
    a = build_world("pmtud", 31)
    b = build_world("pmtud", 31)
    assert a.mid_mtu == b.mid_mtu
    assert set(a.links) == set(b.links)
    assert trace_digest(a.taps.values()) == trace_digest(b.taps.values())


def test_different_seeds_diverge():
    """Sanity check that the digest actually reflects behaviour: three
    different seeds on one profile give three different traces."""
    digests = {run_scenario("caravan", seed).digest for seed in (1, 2, 3)}
    assert len(digests) == 3
