"""Known-bad gateway mutations used by the teeth and shrink tests.

Each mutation takes a :class:`repro.chaos.ChaosWorld` and monkey-patches
one engine instance inside the gateway to reintroduce a realistic bug.
The chaos oracle must catch every one of them.
"""

from repro.core.tcp_merge import _NO_MERGE_FLAGS


def break_merge(world):
    """Reintroduce the merge-without-flush-on-reorder bug.

    The correct engine flushes its context and reopens when a segment
    arrives out of sequence.  This mutation appends the out-of-order
    segment as if it were in order, papering over the sequence hole —
    byte *counts* still come out right after retransmission heals the
    stream, so only the temporal tcp-seq-coverage invariant (and, when
    the hole is never healed in time, stream equality) can see it.
    """
    merge = world.gateway.worker.merge
    orig_feed = merge.feed

    def broken_feed(packet, now=0.0):
        if (
            packet.is_tcp
            and not packet.is_fragment
            and packet.payload
            and not (packet.tcp.flags & _NO_MERGE_FLAGS)
        ):
            key = packet.flow_key()
            ctx = merge._contexts.get(key)
            if ctx is not None and packet.tcp.seq != ctx.next_seq:
                ctx.append(packet, now)
                merge._contexts.move_to_end(key)
                return merge._drain_full(key, ctx)
        return orig_feed(packet, now)

    merge.feed = broken_feed


def break_caravan_split(world):
    """Make the caravan splitter silently drop one inner datagram.

    Whenever a caravan opens into more than one datagram, the first one
    vanishes.  The oracle sees this twice over: a datagram-boundary
    violation (a payload is missing with no fault to blame) and a
    stats-conservation imbalance (the worker counted the caravan's full
    inner count on ingress but emitted fewer datagrams).
    """
    split = world.gateway.worker.caravan_split
    orig_process = split.process

    def lossy_process(packet):
        out = orig_process(packet)
        return out[1:] if len(out) > 1 else out

    split.process = lossy_process
