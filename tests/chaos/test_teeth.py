"""Teeth tests: the oracle must catch planted gateway bugs.

A chaos harness that never fails is worthless.  These tests plant a
known-bad mutation inside the gateway (via ``run_scenario``'s *mutate*
hook), replay a fault schedule that exposes it, and assert the oracle
reports the violation — while the identical schedule against the
unmutated gateway stays green.
"""

from repro.chaos import Fault, FaultPlan, Match, run_scenario
from repro.packet import IPProto

from .conftest import failure_report
from .mutations import break_caravan_split, break_merge

# One dropped data segment on the external ingress forces the merge
# engine to see the retransmission out of order.
DROP_ONE_SEGMENT = FaultPlan(
    link_faults=[
        Fault("drop", "ext_in", Match(protocol=IPProto.TCP, min_payload=1), nth=8),
    ]
)


class TestMergeFlushOnReorder:
    def test_clean_gateway_survives_the_schedule(self):
        result = run_scenario("tcp", 7, plan=DROP_ONE_SEGMENT)
        assert result.ok, failure_report(result)

    def test_oracle_catches_hole_papering_merge(self):
        result = run_scenario("tcp", 7, plan=DROP_ONE_SEGMENT, mutate=break_merge)
        assert not result.ok
        kinds = {violation.split(":", 1)[0] for violation in result.violations}
        # The temporal invariant sees the gateway emit sequence ranges it
        # never received; the stream check sees the receiver stall on the
        # unhealable hole.
        assert "tcp-seq-coverage" in kinds, failure_report(result)
        assert "tcp-stream" in kinds, failure_report(result)

    def test_mutated_failure_is_deterministic(self):
        first = run_scenario("tcp", 7, plan=DROP_ONE_SEGMENT, mutate=break_merge)
        second = run_scenario("tcp", 7, plan=DROP_ONE_SEGMENT, mutate=break_merge)
        assert first.violations == second.violations
        assert first.digest == second.digest


class TestCaravanSplitLosesDatagram:
    def test_clean_gateway_survives_fault_free_run(self):
        result = run_scenario("caravan", 5, plan=FaultPlan())
        assert result.ok, failure_report(result)

    def test_oracle_catches_silent_datagram_loss(self):
        result = run_scenario(
            "caravan", 5, plan=FaultPlan(), mutate=break_caravan_split
        )
        assert not result.ok
        kinds = {violation.split(":", 1)[0] for violation in result.violations}
        # No faults were injected, so a missing datagram has nothing to
        # hide behind: both the boundary check and the conservation
        # identity must fire.
        assert "datagram-boundary" in kinds, failure_report(result)
        assert "stats-conservation" in kinds, failure_report(result)
