"""The chaos corpus: >= 50 seeded fault scenarios must hold all invariants.

Every entry replays a deterministic world + fault plan derived purely
from ``(profile, seed)`` and runs the full invariant oracle against it.
A failure message includes the plan description and the seed, so any
red test reproduces locally with ``run_scenario(profile, seed)``.
"""

import pytest

from repro.chaos import PROFILES, build_plan, corpus, run_scenario

from .conftest import failure_report

CORPUS = corpus()


def test_corpus_size_and_mix():
    assert len(CORPUS) >= 50
    assert {profile for profile, _ in CORPUS} == set(PROFILES)
    # No duplicate scenarios — every entry is distinct work.
    assert len(set(CORPUS)) == len(CORPUS)


def test_corpus_plans_inject_real_faults():
    """The corpus is not vacuous: most plans carry link faults, and the
    gateway-fault kinds all appear somewhere."""
    plans = [build_plan(profile, seed) for profile, seed in CORPUS]
    assert sum(1 for plan in plans if plan.link_faults) >= len(plans) * 3 // 4
    gateway_kinds = {
        fault.kind for plan in plans for fault in plan.gateway_faults
    }
    assert gateway_kinds == {"stall", "eviction_storm", "nic_pressure"}


@pytest.mark.parametrize(
    "profile,seed", CORPUS, ids=[f"{profile}-{seed}" for profile, seed in CORPUS]
)
def test_scenario_holds_invariants(profile, seed):
    result = run_scenario(profile, seed)
    assert result.ok, failure_report(result)
    assert result.checks_run > 0
    assert result.digest  # the trace fingerprint is always produced
