"""Shared helpers for the chaos suite."""

from repro.chaos import ScenarioResult


def failure_report(result: ScenarioResult) -> str:
    """A readable pytest failure message for a scenario result."""
    lines = [
        f"profile={result.profile} seed={result.seed} "
        f"faults_fired={result.faults_fired} checks_run={result.checks_run}",
        f"plan: {result.plan.describe() or '(empty)'}",
    ]
    lines.extend(f"  violation: {violation}" for violation in result.violations)
    lines.extend(f"  note: {note}" for note in result.notes)
    return "\n".join(lines)
