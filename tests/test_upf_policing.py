"""Tests for the token bucket and UPF MBR enforcement."""

import pytest

from repro.packet import build_udp, str_to_ip
from repro.upf import TokenBucket, Upf

N3 = str_to_ip("10.100.0.1")
GNB = str_to_ip("10.100.0.2")
UE = str_to_ip("172.16.0.10")
DN = str_to_ip("93.184.216.34")


class TestTokenBucket:
    def test_allows_within_burst(self):
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=1000)
        assert bucket.allow(1000, now=0.0)

    def test_denies_beyond_burst(self):
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=1000)
        bucket.allow(1000, now=0.0)
        assert not bucket.allow(1, now=0.0)
        assert bucket.denied == 1

    def test_refills_at_rate(self):
        # 8000 bps = 1000 B/s.
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=1000)
        bucket.allow(1000, now=0.0)
        assert not bucket.allow(500, now=0.1)  # only 100 B refilled
        assert bucket.allow(500, now=0.5)  # 0.1->0.5 adds 400 more

    def test_tokens_capped_at_burst(self):
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=1000)
        bucket.allow(100, now=0.0)
        # A long idle period cannot overfill the bucket.
        assert not bucket.allow(1001, now=100.0)
        assert bucket.allow(1000, now=100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=0)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=100, burst_bytes=0)


class TestUpfMbr:
    def make_upf(self, mbr):
        upf = Upf(n3_address=N3)
        upf.sessions.create_session(
            seid=1, ue_ip=UE, uplink_teid=5000, gnb_teid=6000, gnb_ip=GNB,
            mbr_bps=mbr,
        )
        return upf

    def test_unlimited_session_never_polices(self):
        upf = self.make_upf(mbr=None)
        for index in range(50):
            out = upf.process(
                build_udp(DN, UE, 80, 4000, payload=b"\0" * 1000), now=index * 1e-6
            )
            assert len(out) == 1
        assert upf.stats.dropped_mbr == 0

    def test_mbr_polices_burst(self):
        # 80 kbps MBR = 10 kB/s; a burst of 100 x 1 kB packets at t=0
        # exceeds the default 64 kB bucket after ~64 packets.
        upf = self.make_upf(mbr=80_000)
        delivered = 0
        for _ in range(100):
            delivered += len(upf.process(
                build_udp(DN, UE, 80, 4000, payload=b"\0" * 996), now=0.0
            ))
        assert delivered < 100
        assert upf.stats.dropped_mbr == 100 - delivered

    def test_mbr_sustained_rate_enforced(self):
        # Offer 2x the MBR for 10 seconds; roughly half passes.
        upf = self.make_upf(mbr=800_000)  # 100 kB/s
        delivered_bytes = 0
        packet_bytes = 1024
        interval = packet_bytes / 200_000  # 200 kB/s offered
        count = int(10.0 / interval)
        for index in range(count):
            out = upf.process(
                build_udp(DN, UE, 80, 4000, payload=b"\0" * (packet_bytes - 28)),
                now=index * interval,
            )
            if out:
                delivered_bytes += packet_bytes
        achieved_bps = delivered_bytes * 8 / 10.0
        assert achieved_bps == pytest.approx(800_000, rel=0.15)
