"""Tests for the iMTU exchange protocol between neighboring PXGWs."""

import pytest

from repro.core import GatewayConfig, PXGateway
from repro.core.imtu_exchange import (
    IMTU_EXCHANGE_PORT,
    ImtuSpeaker,
    pack_announcement,
    parse_announcement,
)
from repro.net import Topology


class TestWireFormat:
    def test_roundtrip(self):
        payload = pack_announcement(9000, 90)
        assert parse_announcement(payload) == (9000, 90)

    def test_bad_magic_rejected(self):
        assert parse_announcement(b"XXXX\x01\x23\x28\x00\x5a") is None

    def test_bad_version_rejected(self):
        payload = bytearray(pack_announcement(9000, 90))
        payload[4] = 99
        assert parse_announcement(bytes(payload)) is None

    def test_truncated_rejected(self):
        assert parse_announcement(pack_announcement(9000, 90)[:5]) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            pack_announcement(100, 90)
        with pytest.raises(ValueError):
            pack_announcement(9000, 0)


def peered_gateways(imtu_1=9000, imtu_2=9000):
    """host_a - gw1 ==== gw2 - host_b, jumbo peering link."""
    topo = Topology()
    host_a = topo.add_host("host_a")
    host_b = topo.add_host("host_b")
    gw1 = PXGateway(topo.sim, "gw1", config=GatewayConfig(imtu=imtu_1))
    gw2 = PXGateway(topo.sim, "gw2", config=GatewayConfig(imtu=imtu_2))
    topo.add_node(gw1)
    topo.add_node(gw2)
    topo.link(host_a, gw1, mtu=imtu_1)
    topo.link(gw1, gw2, mtu=max(imtu_1, imtu_2))
    topo.link(gw2, host_b, mtu=imtu_2)
    topo.build_routes()
    gw1.mark_internal(gw1.interfaces[0])
    gw2.mark_internal(gw2.interfaces[1])
    return topo, host_a, host_b, gw1, gw2


class TestExchange:
    def test_gateways_learn_peer_imtu(self):
        topo, _a, _b, gw1, gw2 = peered_gateways()
        gw1.enable_imtu_exchange(interval=1.0, hold_time=5.0)
        gw2.enable_imtu_exchange(interval=1.0, hold_time=5.0)
        topo.run(until=0.5)
        assert gw1.neighbor_imtu(gw1.interfaces[1]) == 9000
        assert gw2.neighbor_imtu(gw2.interfaces[0]) == 9000

    def test_learned_imtu_skips_translation(self):
        topo, host_a, host_b, gw1, gw2 = peered_gateways()
        gw1.enable_imtu_exchange(interval=1.0, hold_time=5.0)
        gw2.enable_imtu_exchange(interval=1.0, hold_time=5.0)
        topo.run(until=0.5)
        received = []
        host_b.on_udp(7000, lambda packet, host: received.append(packet))
        host_a.send_udp(host_b.ip, 1, 7000, b"j" * 8000)
        topo.run(until=1.0)
        assert len(received) == 1
        assert received[0].total_len == 8028
        assert gw1.untranslated >= 1

    def test_smaller_peer_imtu_still_translates(self):
        # Peer advertises 4000 < our 9000: jumbos must still be split.
        topo, host_a, host_b, gw1, gw2 = peered_gateways(imtu_1=9000, imtu_2=4000)
        gw1.enable_imtu_exchange(interval=1.0, hold_time=5.0)
        gw2.enable_imtu_exchange(interval=1.0, hold_time=5.0)
        topo.run(until=0.5)
        assert gw1.neighbor_imtu(gw1.interfaces[1]) == 4000
        received = []
        host_b.on_udp(7000, lambda packet, host: received.append(packet))
        host_a.send_udp(host_b.ip, 1, 7000, b"j" * 8000)
        topo.run(until=1.0)
        assert gw1.untranslated == 0

    def test_entry_expires_without_refresh(self):
        topo, _a, _b, gw1, gw2 = peered_gateways()
        speaker2 = gw2.enable_imtu_exchange(interval=1.0, hold_time=3.0)
        gw1.enable_imtu_exchange(interval=1.0, hold_time=3.0)
        topo.run(until=0.5)
        assert gw1.neighbor_imtu(gw1.interfaces[1]) == 9000
        speaker2.stop()  # gw2 goes quiet (decommissioned)
        topo.run(until=10.0)
        assert gw1.neighbor_imtu(gw1.interfaces[1]) is None

    def test_refresh_keeps_entry_alive(self):
        topo, _a, _b, gw1, gw2 = peered_gateways()
        gw1.enable_imtu_exchange(interval=1.0, hold_time=3.0)
        gw2.enable_imtu_exchange(interval=1.0, hold_time=3.0)
        topo.run(until=20.0)
        assert gw1.neighbor_imtu(gw1.interfaces[1]) == 9000

    def test_announcement_counters(self):
        topo, _a, _b, gw1, gw2 = peered_gateways()
        speaker1 = gw1.enable_imtu_exchange(interval=1.0, hold_time=5.0)
        speaker2 = gw2.enable_imtu_exchange(interval=1.0, hold_time=5.0)
        topo.run(until=4.5)
        assert speaker1.announcements_sent >= 4
        assert speaker2.announcements_received >= 4

    def test_internal_interfaces_not_announced(self):
        topo, host_a, _b, gw1, _gw2 = peered_gateways()
        gw1.enable_imtu_exchange(interval=1.0, hold_time=5.0)
        topo.run(until=2.5)
        # The internal host never sees exchange traffic.
        assert not any(
            p.is_udp and p.udp.dst_port == IMTU_EXCHANGE_PORT for p in host_a.unclaimed
        )

    def test_hold_time_must_exceed_interval(self):
        topo, _a, _b, gw1, _gw2 = peered_gateways()
        with pytest.raises(ValueError):
            ImtuSpeaker(gw1, interval=10.0, hold_time=5.0)
