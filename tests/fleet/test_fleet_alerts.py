"""Per-shard alert engines inside observed fleet worlds: burn-rate
evaluation at checkpoint cadence, history replay, and the shard-loss
mid-pending case (PR 10, satellite)."""

from repro.fleet.chaos import run_loss_scenario


def _bundle(seed=101, **kwargs):
    result = run_loss_scenario("mixed", seed, loss_mode="maintenance",
                               observe=True, **kwargs)
    assert result.incident is not None
    return result, result.incident


def test_every_live_shard_has_an_engine_with_cited_history():
    result, bundle = _bundle()
    labels = sorted(bundle["alerts"])
    assert labels == ["shard0", "shard1", "shard2", "shard3"]
    for label in labels:
        cited = bundle["alerts"][label]
        # Liveness rule fires on the first evaluation of every shard
        # that saw traffic before the kill (the victim included — it
        # was evaluated at the sweeps before its loss).
        assert "shard-ingress-active" in cited["fired"]
        assert any(entry["rule"] == "shard-ingress-active"
                   and entry["to"] == "firing"
                   for entry in cited["history"])
        # Burn rules were installed and evaluated but never tripped on
        # a clean run (no malformed caravans → zero burn).
        assert cited["states"]["error-budget-burn-fast"] == "ok"
        assert cited["states"]["error-budget-burn-slow"] == "ok"


def test_victim_engine_history_freezes_at_the_loss():
    """A dead shard's engine is never evaluated again: everything in
    its history happened at or before the kill, and replaying it at the
    bundle's cut time reproduces the frozen states."""
    result, bundle = _bundle()
    loss_at = bundle["trigger"]["detail"]["loss_at"]
    victim = bundle["alerts"][f"shard{result.victim}"]
    assert all(entry["time"] <= loss_at for entry in victim["history"])
    # Survivors kept evaluating after the loss (checkpoint sweeps
    # continue), so at least one survivor saw traffic deltas later.
    survivor_labels = [f"shard{i}" for i in range(4) if i != result.victim]
    assert any(bundle["alerts"][label]["fired"] for label in survivor_labels)


def test_shard_loss_mid_pending_rule_stays_pending():
    """Force flow-table evictions so `shard-table-pressure` (dwell 1.0s,
    far beyond the burst's virtual clock) goes PENDING, then kill the
    shard: the bundle must replay the rule as still pending — the
    canonical page an operator sees after losing a box mid-incident."""
    result, bundle = _bundle(seed=101, flow_table_capacity=8)
    pending = [
        label for label, cited in sorted(bundle["alerts"].items())
        if cited["states"].get("shard-table-pressure") == "pending"
    ]
    assert pending, "expected at least one shard pending on eviction pressure"
    for label in pending:
        cited = bundle["alerts"][label]
        assert "shard-table-pressure" not in cited["fired"]
        entries = [e for e in cited["history"]
                   if e["rule"] == "shard-table-pressure"]
        # The replayed history shows the ok → pending edge and no
        # firing edge ever following it.
        assert entries and entries[-1]["to"] == "pending"


def test_fleet_flight_recorder_carries_sweeps_loss_and_deltas():
    result, bundle = _bundle()
    entries = bundle["flight"]["fleet"]["entries"]
    marks = [e for e in entries if e["kind"] == "mark"]
    assert any(e["mark"] == "checkpoint-sweep" for e in marks)
    loss = [e for e in marks if e["mark"] == "shard-loss"]
    assert len(loss) == 1 and loss[0]["shard"] == result.victim
    samples = [e for e in entries if e["kind"] == "metrics"]
    assert samples and any(s["deltas"].get("shard_rx_packets", 0) > 0
                           for s in samples)


def test_steering_cache_counters_exported():
    from repro.obs import MetricsRegistry, Observability, observe_fleet
    from repro.core.config import GatewayConfig
    from repro.fleet.chaos import _city_profile
    from repro.fleet.fleet import GatewayFleet
    from repro.workload import CityScaleWorkload

    fleet = GatewayFleet(GatewayConfig(), shards=2, steering_seed=3)
    stream = list(CityScaleWorkload(_city_profile("tcp", 3)).packets(200))
    fleet.process_stream(stream)
    registry = MetricsRegistry()
    observe_fleet(Observability(registry=registry), fleet)
    snapshot = registry.snapshot()
    hits = snapshot['px_fleet_steering_cache_hits_total{fleet="fleet0"}']
    misses = snapshot['px_fleet_steering_cache_misses_total{fleet="fleet0"}']
    assert hits == fleet.steering.cache_hits > 0
    assert misses == fleet.steering.cache_misses > 0
    assert hits + misses == fleet.steering.cache_hits + fleet.steering.cache_misses
