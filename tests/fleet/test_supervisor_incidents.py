"""FleetSupervisor drain/removal events become incident bundles when a
flight recorder is attached (PR 10)."""

from repro.core.config import GatewayConfig
from repro.fleet.chaos import _city_profile
from repro.fleet.fleet import GatewayFleet
from repro.fleet.supervisor import FleetSupervisor
from repro.obs import FlightRecorder, TracePropagation
from repro.workload import CityScaleWorkload


def _loaded_fleet(seed=7, shards=4):
    fleet = GatewayFleet(GatewayConfig(flow_table_capacity=256),
                         shards=shards, steering_seed=seed)
    fleet.attach_trace(TracePropagation(seed=seed))
    stream = list(CityScaleWorkload(_city_profile("mixed", seed)).packets(400))
    fleet.process_stream(stream)
    return fleet


def test_maintenance_removal_builds_a_bundle():
    fleet = _loaded_fleet()
    sup = FleetSupervisor(fleet, flight=FlightRecorder(name="fleet")).start()
    sup.run(0.3)
    sup.maintain_shard(2)
    assert len(sup.incidents) == 1
    bundle = sup.incidents[0]
    assert bundle["trigger"]["kind"] == "shard-loss"
    assert bundle["trigger"]["detail"]["mode"] == "maintenance"
    assert bundle["trigger"]["detail"]["shard"] == 2
    assert bundle["trace"]["flows"] and bundle["trace"]["consistent"]
    marks = [e for e in bundle["flight"]["fleet"]["entries"]
             if e["kind"] == "mark"]
    assert any(e["mark"] == "shard-loss" and e["shard"] == 2 for e in marks)


def test_crash_bundle_reports_checkpoint_age():
    fleet = _loaded_fleet()
    sup = FleetSupervisor(fleet, flight=FlightRecorder(name="fleet")).start()
    sup.run(0.3)
    sup.crash_shard(1)
    bundle = sup.incidents[0]
    assert bundle["trigger"]["detail"]["mode"] == "crash"
    assert bundle["trigger"]["detail"]["checkpoint_age"] >= 0.0


def test_supervisor_without_flight_records_nothing():
    fleet = _loaded_fleet()
    sup = FleetSupervisor(fleet).start()
    sup.run(0.3)
    sup.maintain_shard(0)
    assert sup.incidents == []
