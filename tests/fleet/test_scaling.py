"""Fleet scaling: the near-linear pkts/s claim and the workload shape."""

from repro.perf import FLEET_SCHEMA, fleet_world_report, format_fleet_report
from repro.workload import CityScaleProfile, CityScaleWorkload


class TestFleetWorldReport:
    def test_modeled_speedup_is_near_linear(self):
        report = fleet_world_report(worker_counts=(1, 2, 4), quick=True)
        assert report["schema"] == FLEET_SCHEMA
        rows = {row["shards"]: row for row in report["rows"]}
        # The acceptance bar: >= 1.6x at 4 workers.  The modeled rate
        # is deterministic, so this asserts well above the bar.
        assert rows[4]["speedup_vs_1"] >= 1.6
        assert rows[2]["speedup_vs_1"] >= 1.3
        # Monotone in shard count.
        assert (rows[1]["modeled_pkts_per_sec"]
                < rows[2]["modeled_pkts_per_sec"]
                < rows[4]["modeled_pkts_per_sec"])

    def test_report_is_deterministic_in_modeled_terms(self):
        a = fleet_world_report(worker_counts=(1, 4), quick=True)
        b = fleet_world_report(worker_counts=(1, 4), quick=True)
        for row_a, row_b in zip(a["rows"], b["rows"]):
            assert row_a["modeled_pkts_per_sec"] == row_b["modeled_pkts_per_sec"]
            assert row_a["balance"] == row_b["balance"]

    def test_format_renders_every_row(self):
        report = fleet_world_report(worker_counts=(1, 2), quick=True,
                                    packets=2000)
        text = format_fleet_report(report)
        assert "modeled pkts/s" in text
        assert text.count("\n") >= 3


class TestCityScaleWorkload:
    def test_deterministic_stream(self):
        profile = CityScaleProfile(total_flows=3000, concurrency=200, seed=11)
        first = [repr(p) for p, _ in CityScaleWorkload(profile).packets(2000)]
        second = [repr(p) for p, _ in CityScaleWorkload(profile).packets(2000)]
        assert first == second

    def test_population_mix_tracks_the_profile(self):
        profile = CityScaleProfile(
            total_flows=50_000, concurrency=1000,
            elephant_fraction=0.05, udp_fraction=0.2, seed=3,
        )
        workload = CityScaleWorkload(profile)
        udp = tcp = 0
        for packet, _bound in workload.packets(20_000):
            if packet.is_udp:
                udp += 1
            else:
                tcp += 1
        summary = workload.summary()
        started = summary["flows_started"]
        assert started > 1000
        # Elephant share of *flows* near the configured fraction.
        assert 0.02 < summary["elephants_started"] / started < 0.10
        assert udp > 0 and tcp > 0
        assert summary["peak_concurrency"] >= 1000

    def test_diurnal_shape_modulates_concurrency(self):
        flat = CityScaleProfile(
            total_flows=100_000, concurrency=400, seed=9,
            diurnal=(1.0,),
        )
        breathing = CityScaleProfile(
            total_flows=100_000, concurrency=400, seed=9,
            diurnal=(0.25, 1.5),
        )
        flat_workload = CityScaleWorkload(flat)
        for _ in flat_workload.packets(10_000):
            pass
        breathing_workload = CityScaleWorkload(breathing)
        for _ in breathing_workload.packets(10_000):
            pass
        # The breathing profile peaks above the flat one (1.5x target)
        # even though both share the same base concurrency.
        assert (breathing_workload.peak_concurrency
                > flat_workload.peak_concurrency)

    def test_population_exhaustion_ends_the_stream(self):
        profile = CityScaleProfile(total_flows=20, concurrency=10,
                                   mouse_mean_packets=2,
                                   elephant_fraction=0.0, seed=1)
        emitted = sum(1 for _ in CityScaleWorkload(profile).packets(100_000))
        assert emitted < 100_000  # ran out of flows, stream drained
