"""GatewayFleet: steering-consistent datapath, loss, drain/rejoin."""

import random

import pytest

from repro.core.config import Bound, GatewayConfig
from repro.fleet import FleetSupervisor, GatewayFleet
from repro.resilience.health import HealthState
from repro.workload import (
    CityScaleProfile,
    CityScaleWorkload,
    interleave,
    make_tcp_sources,
    make_udp_sources,
)


def small_stream(packets=3000, seed=7):
    rng = random.Random(seed)
    sources = make_tcp_sources(12, 1460) + make_udp_sources(4, 1200)
    return [(p, Bound.INBOUND) for p, _tag in interleave(sources, packets, rng)]


def config(**overrides):
    overrides.setdefault("flow_table_capacity", 64)
    return GatewayConfig(**overrides)


class TestFleetDatapath:
    def test_conservation_over_a_mixed_stream(self):
        fleet = GatewayFleet(config(), shards=4)
        out = fleet.process_stream(small_stream())
        assert out
        assert fleet.conservation_errors() == {}
        stats = fleet.combined_stats()
        assert stats.rx_packets == 3000
        assert stats.tcp_payload_in == stats.tcp_payload_out

    def test_flow_affinity_invariant(self):
        fleet = GatewayFleet(config(), shards=4)
        fleet.process_stream(small_stream())
        for shard in fleet.shards:
            for record in shard.worker.flows.snapshot():
                assert fleet.steering.shard_for(record[0]) == shard.id

    def test_matches_scalar_processing(self):
        # Batch steering must not change what each packet experiences:
        # the combined counters equal a one-shard fleet's (same total
        # work, just partitioned), for a flow-disjoint workload.
        stream = small_stream(1500)
        whole = GatewayFleet(config(), shards=1)
        whole.process_stream(stream)
        split = GatewayFleet(config(), shards=4)
        split.process_stream(stream)
        a, b = whole.combined_stats(), split.combined_stats()
        assert a.rx_packets == b.rx_packets
        assert a.tcp_payload_in == b.tcp_payload_in
        assert a.tcp_payload_out == b.tcp_payload_out
        assert a.udp_datagrams_in == b.udp_datagrams_in
        assert a.udp_datagrams_out == b.udp_datagrams_out

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            GatewayFleet(config(), shards=0)
        with pytest.raises(ValueError):
            GatewayConfig(flow_table_capacity=0)

    def test_bounded_tables_evict_under_city_churn(self):
        fleet = GatewayFleet(config(flow_table_capacity=32), shards=2)
        workload = CityScaleWorkload(
            CityScaleProfile(total_flows=2000, concurrency=300, seed=5)
        )
        fleet.process_stream(workload.packets(6000))
        assert fleet.conservation_errors() == {}
        for shard in fleet.shards:
            assert len(shard.worker.flows) <= 32
        assert sum(s.worker.flows.evictions for s in fleet.shards) > 0

    def test_expire_idle_sweeps_all_shards(self):
        fleet = GatewayFleet(config(), shards=2, flow_idle_timeout=1.0)
        fleet.process_stream(small_stream(500))
        assert fleet.expire_idle(now=100.0) > 0
        assert all(len(s.worker.flows) == 0 for s in fleet.shards)


class TestShardLoss:
    def test_fresh_checkpoint_loss_is_zero_loss(self):
        stream = small_stream()
        half = len(stream) // 2
        control = GatewayFleet(config(), shards=4)
        control.process_stream(stream)

        fleet = GatewayFleet(config(), shards=4)
        out = fleet.process_stream(stream[:half], final_flush=False)
        out += fleet.fail_shard(2, now=1.0)
        out += fleet.process_stream(stream[half:])
        assert fleet.conservation_errors() == {}
        a, b = control.combined_stats(), fleet.combined_stats()
        for counter in ("rx_packets", "tcp_payload_in", "tcp_payload_out",
                        "udp_datagrams_in", "udp_datagrams_out"):
            assert getattr(a, counter) == getattr(b, counter), counter

    def test_loss_rebalances_flows_onto_owners(self):
        fleet = GatewayFleet(config(), shards=4)
        fleet.process_stream(small_stream(), final_flush=False)
        victim_flows = len(fleet.shards[1].worker.flows)
        assert victim_flows > 0
        fleet.fail_shard(1, now=1.0)
        assert fleet.flows_migrated == victim_flows
        for shard in fleet.live_shards():
            for record in shard.worker.flows.snapshot():
                assert fleet.steering.shard_for(record[0]) == shard.id

    def test_stale_checkpoint_loss_still_balances(self):
        stream = small_stream()
        fleet = GatewayFleet(config(), shards=4)
        fleet.process_stream(stream[:1000], final_flush=False)
        stale = fleet.checkpoint_shard(3, now=0.5)
        fleet.process_stream(stream[1000:2000], final_flush=False)
        fleet.fail_shard(3, now=1.0, checkpoint=stale)
        fleet.process_stream(stream[2000:])
        # Post-checkpoint work on the dead shard is discarded wholesale
        # (retransmission territory), but the books still balance.
        assert fleet.conservation_errors() == {}

    def test_cannot_fail_twice_or_fail_last(self):
        fleet = GatewayFleet(config(), shards=2)
        fleet.process_stream(small_stream(200), final_flush=False)
        fleet.fail_shard(0, now=1.0)
        with pytest.raises(ValueError):
            fleet.fail_shard(0, now=1.1)
        with pytest.raises(ValueError):
            fleet.fail_shard(1, now=1.2)

    def test_retired_aggregate_survives_in_combined_stats(self):
        fleet = GatewayFleet(config(), shards=2)
        fleet.process_stream(small_stream(1000), final_flush=False)
        dead_rx = fleet.shards[0].worker.stats.rx_packets
        assert dead_rx > 0
        fleet.fail_shard(0, now=1.0)
        assert fleet.retired.rx_packets == dead_rx
        assert fleet.combined_stats().rx_packets == 1000


class TestDrainRejoin:
    def test_drain_then_rejoin_round_trips_flows(self):
        stream = small_stream()
        fleet = GatewayFleet(config(), shards=4)
        fleet.process_stream(stream[:1500], final_flush=False)
        moved = fleet.drain_shard(1, now=0.5)
        assert moved > 0
        assert len(fleet.shards[1].worker.flows) == 0
        assert not fleet.steering.is_live(1)
        fleet.process_stream(stream[1500:2000], final_flush=False)
        returned = fleet.rejoin_shard(1, now=1.0)
        assert returned >= moved  # its share, possibly grown meanwhile
        fleet.process_stream(stream[2000:])
        assert fleet.conservation_errors() == {}
        for shard in fleet.shards:
            for record in shard.worker.flows.snapshot():
                assert fleet.steering.shard_for(record[0]) == shard.id

    def test_drain_and_rejoin_are_noops_when_inapplicable(self):
        fleet = GatewayFleet(config(), shards=2)
        assert fleet.rejoin_shard(0, now=0.0) == 0  # not drained
        fleet.drain_shard(0, now=0.0)
        assert fleet.drain_shard(0, now=0.1) == 0  # already drained


class TestSupervisor:
    def test_monitors_checkpoint_on_the_shared_clock(self):
        fleet = GatewayFleet(config(), shards=2)
        supervisor = FleetSupervisor(fleet, checkpoint_interval=0.05).start()
        supervisor.run(0.26)
        for manager in supervisor.managers:
            assert manager.checkpoints_taken == 6
        supervisor.stop()

    def test_crash_from_periodic_checkpoint(self):
        fleet = GatewayFleet(config(), shards=4)
        supervisor = FleetSupervisor(fleet, checkpoint_interval=0.05).start()
        stream = small_stream()
        fleet.process_stream(stream[:1500], final_flush=False)
        supervisor.run(0.12)
        flushed = supervisor.crash_shard(2)
        assert not fleet.shards[2].alive
        fleet.process_stream(stream[1500:])
        assert fleet.conservation_errors() == {}
        assert isinstance(flushed, list)
        supervisor.stop()

    def test_bypass_health_drains_and_recovery_rejoins(self):
        fleet = GatewayFleet(config(), shards=2)
        supervisor = FleetSupervisor(fleet).start()
        fleet.process_stream(small_stream(600), final_flush=False)
        monitor = supervisor.monitors[0]
        monitor.state = HealthState.BYPASS  # simulate a sick shard
        supervisor.reconcile(now=1.0)
        assert fleet.shards[0].drained
        assert not fleet.steering.is_live(0)
        monitor.state = HealthState.HEALTHY
        supervisor.reconcile(now=2.0)
        assert not fleet.shards[0].drained
        assert fleet.steering.is_live(0)
        assert len(supervisor.actions) == 2
        supervisor.stop()

    def test_summary_is_json_friendly(self):
        import json

        fleet = GatewayFleet(config(), shards=2)
        supervisor = FleetSupervisor(fleet).start()
        json.dumps(supervisor.summary())
        json.dumps(fleet.summary())
        supervisor.stop()


class TestObservedFleet:
    def test_per_shard_series_and_tier_aggregates(self):
        from repro.obs import Observability, observe_fleet

        fleet = GatewayFleet(config(), shards=2)
        obs = Observability()
        observe_fleet(obs, fleet)
        fleet.process_stream(small_stream(1000), final_flush=False)
        fleet.fail_shard(1, now=1.0)
        text = obs.registry.to_prometheus_text()
        assert 'px_fleet_shard_rx_packets_total{fleet="fleet0",shard="0"}' in text
        assert 'px_fleet_shard_alive{fleet="fleet0",shard="1"} 0' in text
        assert "px_fleet_shard_losses_total" in text
        assert "px_fleet_flows_migrated_total" in text
        # The dead shard's series are frozen, not vanished.
        assert 'px_fleet_shard_rx_packets_total{fleet="fleet0",shard="1"}' in text
        assert 'px_fleet_live_shards{fleet="fleet0"} 1' in text

    def test_scrapes_are_stable_between_identical_states(self):
        from repro.obs import Observability, observe_fleet

        fleet = GatewayFleet(config(), shards=2)
        obs = Observability()
        observe_fleet(obs, fleet)
        fleet.process_stream(small_stream(500))
        first = obs.registry.to_prometheus_text()
        second = obs.registry.to_prometheus_text()
        assert first == second
