"""Cross-shard trace propagation: hop chains, journey reconstruction,
the consistency verdict, and its teeth (PR 10)."""

import pytest

from repro.fleet.chaos import run_loss_scenario
from repro.obs.incident import bundle_to_json
from repro.obs.propagation import TracePropagation


def test_trace_ids_are_deterministic_per_seed():
    from repro.packet import FlowKey

    flow = FlowKey(6, 0x0A000001, 1234, 0x08080808, 443)
    one, two = TracePropagation(seed=9), TracePropagation(seed=9)
    other = TracePropagation(seed=10)
    assert one.trace_id(flow) == two.trace_id(flow)
    assert one.trace_id(flow) != other.trace_id(flow)
    assert len(one.trace_id(flow)) == 16


def test_observed_run_leaves_digest_untouched():
    """The tentpole's perturbation guard: attaching the whole tracing +
    flight + alert layer must not move a single egress byte."""
    for mode in ("crash", "maintenance"):
        bare = run_loss_scenario("mixed", 101, loss_mode=mode)
        observed = run_loss_scenario("mixed", 101, loss_mode=mode,
                                     observe=True)
        assert observed.digest == bare.digest
        assert observed.egress == bare.egress
        assert observed.incident is not None
        assert bare.incident is None


def test_shard_loss_bundle_names_implicated_flows():
    result = run_loss_scenario("mixed", 101, loss_mode="maintenance",
                               observe=True)
    bundle = result.incident
    assert bundle["trigger"]["kind"] == "shard-loss"
    assert bundle["trigger"]["detail"]["victim"] == result.victim
    trace = bundle["trace"]
    assert trace["flows"], "bundle must name implicated flows"
    assert trace["consistent"] and not trace["problems"]
    # Every implicated flow's journey crosses the victim boundary: a
    # rebalance hop away from the victim, and flow-attributed spans.
    for journey in trace["journeys"]:
        kinds = [hop["kind"] for hop in journey["hops"]]
        assert "rebalance" in kinds
        rebalance = next(h for h in journey["hops"]
                         if h["kind"] == "rebalance")
        assert rebalance["detail"] == f"shard-loss:shard{result.victim}"
        assert rebalance["shard"] != result.victim
    assert any(journey["spans"] for journey in trace["journeys"])


def test_bundles_are_same_seed_identical():
    one = run_loss_scenario("tcp", 102, loss_mode="maintenance",
                            observe=True)
    two = run_loss_scenario("tcp", 102, loss_mode="maintenance",
                            observe=True)
    assert bundle_to_json(one.incident) == bundle_to_json(two.incident)


def test_stale_checkpoint_sabotage_trips_the_oracle():
    result = run_loss_scenario("mixed", 101, loss_mode="maintenance",
                               observe=True, sabotage="stale-checkpoint")
    assert result.violations
    assert result.incident["trigger"]["kind"] == "chaos-oracle"
    assert result.incident["trigger"]["detail"]["violations"] == \
        result.violations


def test_unknown_sabotage_rejected():
    with pytest.raises(ValueError):
        run_loss_scenario("mixed", 101, sabotage="bit-flip")


def test_corrupted_propagation_fails_verification(monkeypatch):
    """Teeth: silently dropping rebalance hops must flip the bundle's
    consistency verdict — the spans-vs-hops and steering-owner checks
    both notice the missing link."""
    monkeypatch.setattr(TracePropagation, "rebalance",
                        lambda self, *a, **k: None)
    result = run_loss_scenario("mixed", 101, loss_mode="maintenance",
                               observe=True)
    bundle = result.incident
    assert bundle["trace"]["flows"] == []  # nobody recorded a rebalance
    # Re-verify against the flows the migration actually moved.
    assert result.flows_migrated > 0


def test_corrupted_hop_chain_is_reported(monkeypatch):
    """Teeth, sharper: keep the implicated-flow discovery intact but
    corrupt the recorded hop so verify() must flag the break."""
    real = TracePropagation.rebalance

    def skewed(self, flow, src, dst, time, reason="shard-loss"):
        real(self, flow, src, dst, time, reason=reason)
        ctx = self.contexts[flow]
        ctx.hops[-1]["parent"] = 99  # sever the causal chain

    monkeypatch.setattr(TracePropagation, "rebalance", skewed)
    result = run_loss_scenario("mixed", 101, loss_mode="maintenance",
                               observe=True)
    trace = result.incident["trace"]
    assert trace["flows"]
    assert not trace["consistent"]
    assert any("broken parent chain" in p for p in trace["problems"])
