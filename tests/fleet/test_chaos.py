"""Fleet chaos: worker-shard loss under city load, corpus-wide."""

import pytest

from repro.fleet.chaos import fleet_corpus, run_loss_scenario


class TestFleetCorpus:
    def test_corpus_shape_matches_the_link_chaos_grid(self):
        corpus = fleet_corpus(56)
        assert len(corpus) == 56
        profiles = {entry[0] for entry in corpus}
        assert profiles == {"tcp", "caravan", "mixed", "pmtud"}
        modes = {entry[2] for entry in corpus}
        assert modes == {"crash", "maintenance"}
        seeds = [entry[1] for entry in corpus]
        assert len(set(seeds)) == 56

    @pytest.mark.parametrize(
        "profile,seed,loss_mode", fleet_corpus(56),
        ids=lambda value: str(value),
    )
    def test_loss_scenario_upholds_invariants(self, profile, seed, loss_mode):
        result = run_loss_scenario(profile, seed, loss_mode=loss_mode)
        assert result.ok, result.violations
        assert result.packets == 1000
        assert result.egress > 0
        assert not result.violations

    def test_scenarios_are_deterministic(self):
        first = run_loss_scenario("mixed", 115, loss_mode="crash")
        second = run_loss_scenario("mixed", 115, loss_mode="crash")
        assert first.digest == second.digest
        assert first.flows_migrated == second.flows_migrated

    def test_crash_and_maintenance_diverge(self):
        # The two loss modes replay different checkpoints, so the same
        # seed must not produce identical runs (otherwise the mode knob
        # is dead).
        crash = run_loss_scenario("tcp", 101, loss_mode="crash")
        maintenance = run_loss_scenario("tcp", 101, loss_mode="maintenance")
        assert crash.victim == maintenance.victim
        assert crash.ok and maintenance.ok

    def test_unknown_loss_mode_rejected(self):
        with pytest.raises(ValueError):
            run_loss_scenario("tcp", 101, loss_mode="meteor")
