"""Rendezvous steering: determinism, balance, minimal-movement."""

import pytest

from repro.fleet import FleetSteering
from repro.packet import FlowKey, IPProto


def flows(count, salt=0):
    return [
        FlowKey(IPProto.TCP, 0x0A000000 + i, 1000 + salt, 0x0B000000 + (i % 7), 443)
        for i in range(count)
    ]


class TestSteering:
    def test_deterministic_across_instances(self):
        population = flows(500)
        a = FleetSteering(4, seed=9)
        b = FleetSteering(4, seed=9)
        assert [a.shard_for(f) for f in population] == [
            b.shard_for(f) for f in population
        ]

    def test_seed_changes_the_map(self):
        population = flows(200)
        a = FleetSteering(4, seed=1)
        b = FleetSteering(4, seed=2)
        assert [a.shard_for(f) for f in population] != [
            b.shard_for(f) for f in population
        ]

    def test_balance_is_near_uniform(self):
        steering = FleetSteering(4)
        counts = steering.distribution(flows(4000))
        mean = sum(counts) / 4
        for count in counts:
            assert abs(count - mean) / mean < 0.15

    def test_removal_moves_only_the_victims_flows(self):
        steering = FleetSteering(4)
        population = flows(1000)
        before = {f: steering.shard_for(f) for f in population}
        steering.remove(2)
        after = {f: steering.shard_for(f) for f in population}
        for flow in population:
            if before[flow] != 2:
                assert after[flow] == before[flow]
            else:
                assert after[flow] != 2

    def test_restore_returns_exactly_the_old_flows(self):
        steering = FleetSteering(4)
        population = flows(1000)
        before = {f: steering.shard_for(f) for f in population}
        steering.remove(1)
        steering.restore(1)
        assert {f: steering.shard_for(f) for f in population} == before
        assert steering.reshards == 2

    def test_cannot_remove_last_shard(self):
        steering = FleetSteering(2)
        steering.remove(0)
        with pytest.raises(ValueError):
            steering.remove(1)
        with pytest.raises(ValueError):
            FleetSteering(0)

    def test_remove_and_restore_are_idempotent(self):
        steering = FleetSteering(3)
        steering.remove(0)
        steering.remove(0)
        assert steering.reshards == 1
        steering.restore(0)
        steering.restore(0)
        assert steering.reshards == 2

    def test_unkeyed_round_robin_skips_dead_shards(self):
        steering = FleetSteering(3)
        steering.remove(1)
        picks = {steering.shard_for_unkeyed() for _ in range(10)}
        assert picks == {0, 2}

    def test_steered_counters_track_decisions(self):
        steering = FleetSteering(2)
        population = flows(100)
        for flow in population:
            steering.shard_for(flow)
            steering.shard_for(flow)  # cache hit still counts
        assert sum(steering.steered) == 200

    def test_cache_hit_miss_counters(self):
        steering = FleetSteering(2)
        population = flows(50)
        for flow in population:
            steering.shard_for(flow)
        assert steering.cache_misses == 50
        assert steering.cache_hits == 0
        for flow in population:
            steering.shard_for(flow)
        assert steering.cache_hits == 50
        assert steering.cache_misses == 50

    def test_on_decision_fires_only_on_misses(self):
        steering = FleetSteering(2)
        seen = []
        steering.on_decision = lambda flow, shard: seen.append((flow, shard))
        population = flows(10)
        for flow in population:
            steering.shard_for(flow)
            steering.shard_for(flow)  # hit: no callback
        assert len(seen) == 10
        assert all(steering.shard_for(flow) == shard
                   for flow, shard in seen)

    def test_owner_of_is_a_pure_peek(self):
        steering = FleetSteering(3)
        fired = []
        steering.on_decision = lambda flow, shard: fired.append(flow)
        population = flows(20)
        owners = [steering.owner_of(flow) for flow in population]
        # No mutation: no cache entries, no counters, no callbacks.
        assert not fired
        assert steering.cache_hits == 0 and steering.cache_misses == 0
        assert sum(steering.steered) == 0
        # And it agrees with the real steering decision.
        assert owners == [steering.shard_for(flow) for flow in population]
        # After caching, the peek returns the cached assignment.
        assert owners == [steering.owner_of(flow) for flow in population]
