"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # clock advanced to the boundary
    # Assert on the queue, not on timing side effects: exactly the late
    # event is still pending, at exactly its scheduled time.
    assert sim.pending() == 1
    assert sim.peek_time() == 5.0
    sim.run()
    assert fired == ["early", "late"]
    assert sim.pending() == 0
    assert sim.peek_time() is None


def test_events_can_schedule_events():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, handle.cancel)
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_into_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for index in range(10):
        sim.schedule(float(index), fired.append, index)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek_time() == 2.0


def test_pending_counts_live_events():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    handle.cancel()
    assert sim.pending() == 1


def test_stepped_runs_observe_queue_draining():
    """Advancing in fixed steps must never skip or re-run work: the
    pending count and next-event time fully describe progress, so the
    test asserts on those instead of sleeping toward a deadline."""
    sim = Simulator()
    fired = []
    times = [0.4, 1.2, 2.7, 3.1]
    for time in times:
        sim.schedule_at(time, fired.append, time)
    step = 1.0
    while sim.pending():
        next_time = sim.peek_time()
        sim.run(until=sim.now + step)
        # Everything scheduled inside the window fired, nothing beyond.
        assert all(t <= sim.now for t in fired)
        remaining = [t for t in times if t > sim.now]
        assert sim.pending() == len(remaining)
        assert sim.peek_time() == (min(remaining) if remaining else None)
        assert next_time is not None
    assert fired == times


def test_max_events_leaves_remainder_pending():
    sim = Simulator()
    fired = []
    for index in range(6):
        sim.schedule(float(index), fired.append, index)
    sim.run(max_events=2)
    assert fired == [0, 1]
    assert sim.pending() == 4
    assert sim.peek_time() == 2.0  # resumable exactly where it stopped
    sim.run()
    assert fired == list(range(6))


def test_callback_scheduling_updates_peek_and_pending():
    sim = Simulator()
    observed = []

    def first():
        sim.schedule(2.0, observed.append, "second")
        observed.append((sim.pending(), sim.peek_time()))

    sim.schedule(1.0, first)
    assert sim.peek_time() == 1.0
    sim.run()
    # Inside the callback the newly scheduled event was already visible.
    assert observed == [(1, 3.0), "second"]


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
def test_execution_order_is_sorted_property(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    assert sim.pending() == len(delays)
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.pending() == 0 and sim.peek_time() is None


def test_peek_pending_churn_invariant():
    """peek_time() lazily pops cancelled heap entries; pending() is a
    live counter the cancel already decremented.  Interleaving
    schedule / cancel / peek in every order must keep pending() exact
    and peek_time() pointing at the earliest *live* event."""
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(8)]
    assert sim.pending() == 8

    # Cancel the head twice over: peek must skip past both, the counter
    # must not double-decrement.
    handles[0].cancel()
    handles[0].cancel()  # idempotent
    handles[1].cancel()
    assert sim.pending() == 6
    assert sim.peek_time() == 3.0  # lazily popped the two cancelled heads
    assert sim.pending() == 6      # ...without touching the counter

    # Schedule an earlier event after the peek compacted the head.
    sim.schedule(0.5, lambda: None)
    assert sim.peek_time() == 0.5
    assert sim.pending() == 7

    # Cancel a non-head entry: the heap still holds it, peek is unmoved.
    handles[5].cancel()
    assert sim.pending() == 6
    assert sim.peek_time() == 0.5

    # Churn: alternate cancels and peeks down to one live event.
    for handle in handles[2:5] + handles[6:]:
        before = sim.pending()
        handle.cancel()
        assert sim.pending() == before - 1
        sim.peek_time()
    assert sim.pending() == 1
    assert sim.peek_time() == 0.5
    sim.run()
    assert sim.pending() == 0 and sim.peek_time() is None


@given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=100.0,
                                    allow_nan=False),
                          st.booleans(), st.booleans()), max_size=40))
def test_peek_pending_churn_property(ops):
    """Property form: after any schedule/cancel/peek interleaving the
    counter equals the number of live handles."""
    sim = Simulator()
    live = []
    for delay, do_cancel, do_peek in ops:
        handle = sim.schedule(delay, lambda: None)
        live.append(handle)
        if do_cancel:
            victim = live.pop(len(live) // 2)
            victim.cancel()
        if do_peek:
            expected = min((h.time for h in live), default=None)
            assert sim.peek_time() == expected
        assert sim.pending() == len(live)


# ---------------------------------------------------------------------------
# schedule_fast contract guard
# ---------------------------------------------------------------------------


def test_schedule_fast_returns_no_handle():
    sim = Simulator()
    assert sim.schedule_fast(1.0, lambda: None) is None


def test_schedule_fast_cannot_be_cancelled():
    # Fast events expose no handle — there is nothing to cancel.  Even
    # heavy cancel churn on surrounding handle-carrying events must
    # leave every fast event counted, peekable, and fired.
    sim = Simulator()
    fired = []
    sim.schedule_fast(1.0, fired.append, "x")
    victims = [sim.schedule(0.5 + i * 0.01, fired.append, f"v{i}") for i in range(20)]
    assert sim.pending() == 21
    for victim in victims:
        victim.cancel()
    assert sim.pending() == 1, "cancel churn leaked into the fast event count"
    assert sim.peek_time() == 1.0
    sim.run()
    assert fired == ["x"]


def test_schedule_fast_visible_to_pending_and_peek():
    sim = Simulator()
    sim.schedule_fast(2.0, lambda: None)
    handle = sim.schedule(1.0, lambda: None)
    assert sim.pending() == 2
    assert sim.peek_time() == 1.0
    handle.cancel()
    # peek skips the cancelled handle-carrying event but must still
    # see the fast event behind it.
    assert sim.peek_time() == 2.0
    assert sim.pending() == 1


def test_schedule_fast_interleaves_in_time_seq_order():
    # Fast and handle-carrying events at equal times fire in exact
    # scheduling (seq) order: the fast path buys no reordering.
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "slow-a")
    sim.schedule_fast(1.0, fired.append, "fast-b")
    sim.schedule(1.0, fired.append, "slow-c")
    sim.schedule_fast(0.5, fired.append, "fast-first")
    sim.run()
    assert fired == ["fast-first", "slow-a", "fast-b", "slow-c"]


def test_schedule_fast_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_fast(-0.1, lambda: None)


def test_schedule_fast_far_future_overflow_heap():
    # Beyond the wheel horizon events land in the overflow heap; they
    # must still honour the same ordering and visibility contract.
    sim = Simulator()
    fired = []
    horizon = sim._slots / sim._res_inv
    sim.schedule_fast(horizon * 10, fired.append, "far")
    sim.schedule_fast(horizon / 2, fired.append, "near")
    assert sim.pending() == 2
    assert sim.peek_time() == pytest.approx(horizon / 2)
    sim.run()
    assert fired == ["near", "far"]
