"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # clock advanced to the boundary
    sim.run()
    assert fired == ["early", "late"]


def test_events_can_schedule_events():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, handle.cancel)
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_into_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for index in range(10):
        sim.schedule(float(index), fired.append, index)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek_time() == 2.0


def test_pending_counts_live_events():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    handle.cancel()
    assert sim.pending() == 1


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
def test_execution_order_is_sorted_property(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
