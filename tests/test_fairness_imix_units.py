"""Unit tests for fairness metrics, IMIX profiles, and worker regressions."""

import random

import pytest

from repro.analysis.fairness import jain_index, mss_bias_ratio, throughput_shares
from repro.core import Bound, GatewayConfig, GatewayWorker
from repro.packet import build_tcp
from repro.workload.imix import IMIX_SIMPLE, ImixProfile, imix_tcp_sources, imix_udp_sources


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([10.0, 10.0, 10.0]) == pytest.approx(1.0)

    def test_one_flow_hogs(self):
        assert jain_index([100.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_intermediate(self):
        value = jain_index([3.0, 1.0])
        assert 0.5 < value < 1.0

    def test_all_zero_vacuously_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])

    def test_shares_sum_to_one(self):
        shares = throughput_shares([1.0, 3.0])
        assert sum(shares) == pytest.approx(1.0)
        assert shares == [0.25, 0.75]
        assert throughput_shares([0.0]) == [0.0]

    def test_bias_ratio(self):
        groups = {"large": [6.0, 6.0], "small": [2.0, 2.0]}
        assert mss_bias_ratio(groups) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            mss_bias_ratio({"large": [], "small": [1.0]})


class TestImixProfile:
    def test_mean_size(self):
        profile = ImixProfile()
        assert profile.mean_size == pytest.approx((40 * 7 + 576 * 4 + 1500 * 1) / 12)

    def test_draw_respects_weights(self):
        profile = ImixProfile()
        rng = random.Random(5)
        draws = [profile.draw(rng) for _ in range(12_000)]
        small = sum(1 for size in draws if size == 40)
        # 7/12 of draws should be 40 B (within sampling noise).
        assert small / len(draws) == pytest.approx(7 / 12, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            ImixProfile([])
        with pytest.raises(ValueError):
            ImixProfile([(10, 1)])  # below header floor
        with pytest.raises(ValueError):
            ImixProfile([(100, 0)])

    def test_udp_sources_sizes_from_mix(self):
        sources = imix_udp_sources(200, random.Random(1))
        sizes = {source.payload_size + 28 for source in sources}
        assert sizes <= {size for size, _w in IMIX_SIMPLE}

    def test_tcp_sources_sizes_from_mix(self):
        sources = imix_tcp_sources(200, random.Random(2))
        sizes = {source.payload_size + 40 for source in sources}
        # 40 B IP packets cannot carry TCP payload; floor at 1 byte.
        assert all(source.payload_size >= 1 for source in sources)
        assert 576 in sizes or 1500 in sizes


class TestWorkerHairpinMtuGuard:
    """Regression: a mouse-classified jumbo must never hairpin outbound
    (it would exceed the egress MTU and trigger spurious ICMP/PMTUD)."""

    def test_outbound_jumbo_mouse_goes_through_split(self):
        worker = GatewayWorker(GatewayConfig())  # hairpin on, threshold 8
        packet = build_tcp("10.1.0.1", "9.9.9.9", 80, 1, payload=b"j" * 8948)
        outs = worker.process(packet, Bound.OUTBOUND)  # first packet = mouse
        assert worker.stats.hairpinned == 0
        assert len(outs) == 7
        assert all(p.total_len <= 1500 for p in outs)

    def test_outbound_small_mouse_still_hairpins(self):
        worker = GatewayWorker(GatewayConfig())
        packet = build_tcp("10.1.0.1", "9.9.9.9", 80, 1, payload=b"s" * 200)
        outs = worker.process(packet, Bound.OUTBOUND)
        assert outs == [packet]
        assert worker.stats.hairpinned == 1

    def test_inbound_mouse_hairpins_regardless_of_size_fit(self):
        worker = GatewayWorker(GatewayConfig())
        packet = build_tcp("9.9.9.9", "10.1.0.1", 1, 80, payload=b"m" * 1448)
        outs = worker.process(packet, Bound.INBOUND)
        assert outs == [packet]
        assert worker.stats.hairpinned == 1
