"""Smoke and schema tests for the microbenchmark harness."""

import json
import os
import subprocess
import sys

import pytest

from repro.perf.bench import BENCH_SCHEMA, bench_names, run_benchmarks, write_report
from repro.perf.compare import compare_reports, load_report, validate_report

_HERE = os.path.dirname(__file__)
_REPO = os.path.dirname(os.path.dirname(_HERE))


def test_bench_names_cover_the_required_catalog():
    names = bench_names()
    assert len(names) >= 6
    for required in ("gateway_world", "checksum", "merge_split", "upf_pipeline"):
        assert required in names


def test_quick_run_produces_valid_schema():
    report = run_benchmarks(quick=True, reps=1, only=["checksum", "packet_parse"])
    validate_report(report)
    assert report["schema"] == BENCH_SCHEMA
    rows = {row["bench"]: row for row in report["results"]}
    assert set(rows) == {"checksum", "packet_parse"}
    for row in rows.values():
        assert row["pkts_per_sec"] > 0
        assert row["ns_per_pkt"] > 0
        assert row["packets"] > 0
        assert row["p95_ns_per_pkt"] >= 0


def test_write_report_round_trips(tmp_path):
    report = run_benchmarks(quick=True, reps=1, only=["checksum"])
    out = tmp_path / "bench.json"
    write_report(report, str(out))
    assert load_report(str(out)) == report


def test_committed_artifacts_validate_and_show_speedup():
    baseline = load_report(os.path.join(_REPO, "BENCH_pr3_baseline.json"))
    current = load_report(os.path.join(_REPO, "BENCH_pr3.json"))
    rows = {r["bench"]: r["pkts_per_sec"] for r in current["results"]}
    base = {r["bench"]: r["pkts_per_sec"] for r in baseline["results"]}
    assert len(rows) >= 6
    # The PR's headline acceptance: the end-to-end gateway bench runs
    # at least 1.5x the pre-PR datapath under identical conditions.
    assert rows["gateway_world"] >= 1.5 * base["gateway_world"]


def test_compare_flags_regressions():
    base = {
        "schema": BENCH_SCHEMA,
        "results": [
            {"bench": "a", "pkts_per_sec": 100.0, "ns_per_pkt": 1e7, "reps": 3},
            {"bench": "b", "pkts_per_sec": 100.0, "ns_per_pkt": 1e7, "reps": 3},
        ],
    }
    new = {
        "schema": BENCH_SCHEMA,
        "results": [
            {"bench": "a", "pkts_per_sec": 65.0, "ns_per_pkt": 2e7, "reps": 3},
            {"bench": "b", "pkts_per_sec": 95.0, "ns_per_pkt": 1.1e7, "reps": 3},
            {"bench": "new-only", "pkts_per_sec": 1.0, "ns_per_pkt": 1e9, "reps": 3},
        ],
    }
    results = {r.bench: r for r in compare_reports(base, new, threshold=0.30)}
    assert results["a"].regressed  # 0.65x < 0.70x floor
    assert not results["b"].regressed
    assert "new-only" not in results  # new benches never fail the gate


def test_compare_flags_dropped_benchmarks_as_failures():
    base = {
        "schema": BENCH_SCHEMA,
        "results": [
            {"bench": "a", "pkts_per_sec": 100.0, "ns_per_pkt": 1e7, "reps": 3},
            {"bench": "b", "pkts_per_sec": 200.0, "ns_per_pkt": 5e6, "reps": 3},
        ],
    }
    new = {
        "schema": BENCH_SCHEMA,
        "results": [
            {"bench": "a", "pkts_per_sec": 100.0, "ns_per_pkt": 1e7, "reps": 3},
        ],
    }
    results = {r.bench: r for r in compare_reports(base, new, threshold=0.30)}
    assert set(results) == {"a", "b"}
    assert not results["a"].regressed
    dropped = results["b"]
    assert dropped.missing and dropped.regressed
    assert dropped.new_pps == 0.0 and dropped.ratio == 0.0
    assert "MISSING" in dropped.line()
    assert "MISSING" not in results["a"].line()


def test_compare_still_requires_common_benchmarks():
    base = {
        "schema": BENCH_SCHEMA,
        "results": [
            {"bench": "a", "pkts_per_sec": 100.0, "ns_per_pkt": 1e7, "reps": 3},
        ],
    }
    new = {
        "schema": BENCH_SCHEMA,
        "results": [
            {"bench": "z", "pkts_per_sec": 100.0, "ns_per_pkt": 1e7, "reps": 3},
        ],
    }
    with pytest.raises(ValueError, match="no common benchmarks"):
        compare_reports(base, new)


def test_validate_rejects_malformed_reports():
    with pytest.raises(ValueError):
        validate_report({"schema": "bogus/9", "results": []})
    with pytest.raises(ValueError):
        validate_report({"schema": BENCH_SCHEMA, "results": []})
    with pytest.raises(ValueError):
        validate_report(
            {
                "schema": BENCH_SCHEMA,
                "results": [{"bench": "a", "pkts_per_sec": -1.0,
                             "ns_per_pkt": 1.0, "reps": 3}],
            }
        )
    with pytest.raises(ValueError):
        validate_report(
            {
                "schema": BENCH_SCHEMA,
                "results": [
                    {"bench": "a", "pkts_per_sec": 1.0, "ns_per_pkt": 1.0, "reps": 3},
                    {"bench": "a", "pkts_per_sec": 2.0, "ns_per_pkt": 1.0, "reps": 3},
                ],
            }
        )


def test_cli_bench_quick_subset(tmp_path):
    out = tmp_path / "bench_cli.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "bench", "--quick", "--reps", "1",
         "--only", "checksum", "--out", str(out)],
        capture_output=True,
        text=True,
        cwd=_REPO,
        env={**os.environ, "PYTHONPATH": os.path.join(_REPO, "src")},
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    validate_report(report)
    assert report["results"][0]["bench"] == "checksum"


def test_bench_names_cover_the_batched_catalog():
    # PR 8 additions: the batched-datapath twin benches and the event
    # wheel churn bench must stay in the catalog (dropping one is how a
    # deleted fast path escapes the regression gate).
    names = bench_names()
    for required in ("gateway_stream", "gateway_world_batched", "event_wheel"):
        assert required in names


def test_profile_benchmark_is_deterministic_and_well_formed():
    from repro.perf import format_profile, profile_benchmark

    first = profile_benchmark("event_wheel", quick=True, top=10)
    second = profile_benchmark("event_wheel", quick=True, top=10)
    assert first["bench"] == "event_wheel"
    assert first["packets"] > 0
    assert 0 < len(first["rows"]) <= 10
    for row in first["rows"]:
        assert set(row) == {"ncalls", "tottime", "cumtime", "function"}
        assert row["ncalls"] >= 1
    # The workload is seeded: call counts replay exactly.  Row *order*
    # is cumtime-sorted (a timing, not a count), so compare the
    # name -> ncalls map over the rows both runs ranked.
    first_counts = {r["function"]: r["ncalls"] for r in first["rows"]}
    second_counts = {r["function"]: r["ncalls"] for r in second["rows"]}
    shared = set(first_counts) & set(second_counts)
    assert shared, "no overlap between two profiles of the same seeded bench"
    for name in shared:
        assert first_counts[name] == second_counts[name], name
    text = format_profile(first)
    assert "event_wheel" in text and "cumtime" in text


def test_speedup_table_renders_measured_rows_only():
    from repro.perf.compare import CompareResult, speedup_table

    rows = [
        CompareResult(bench="a", base_pps=100.0, new_pps=200.0, ratio=2.0,
                      regressed=False, base_ns=10_000_000.0, new_ns=5_000_000.0),
        CompareResult(bench="gone", base_pps=100.0, new_pps=0.0, ratio=0.0,
                      regressed=True, missing=True),
    ]
    table = speedup_table(rows)
    assert "| a |" in table and "2.00x" in table
    assert "gone" not in table  # missing benches are gate failures, not rows


def test_compare_line_reports_speedup_column():
    from repro.perf.compare import CompareResult

    result = CompareResult(bench="a", base_pps=100.0, new_pps=150.0,
                           ratio=1.5, regressed=False)
    assert "speedup" in result.line() and "1.50x" in result.line()
