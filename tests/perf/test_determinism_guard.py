"""Determinism guard: the fast-path rewrite must not move a single event.

The chaos digests hash every link-tap event stream of a scenario; the
trace fingerprint additionally pins the gateway's per-packet trace for
one mixed scenario.  Both goldens were captured before the fast-path
optimizations landed, so any reordering, dropped notification, or
changed length introduced by the datapath rewrite fails here — not in
a flaky end-to-end run.
"""

import hashlib
import json
import os

import pytest

from repro.chaos.scenarios import corpus, run_scenario
from repro.sim.trace import PacketTrace

_HERE = os.path.dirname(__file__)


def _load(name):
    with open(os.path.join(_HERE, name)) as handle:
        return json.load(handle)


def test_trace_fingerprint_matches_golden():
    golden = _load("trace_fingerprint_pr3.json")
    profile, _, seed = golden["scenario"].partition(":")

    trace = PacketTrace()

    def attach(world):
        world.gateway.trace = trace

    result = run_scenario(profile, int(seed), mutate=attach)
    assert result.digest == golden["digest"]

    digest = hashlib.sha256()
    for entry in trace.entries:
        digest.update(
            repr(
                (entry.time, entry.point, entry.event, entry.length, entry.summary)
            ).encode()
        )
    assert len(trace.entries) == golden["entries"]
    assert digest.hexdigest() == golden["sha256"]


@pytest.mark.parametrize(
    "name,seed",
    [
        pytest.param(name, seed, id=f"{name}:{seed}")
        for name, seed in corpus()[:8]
    ],
)
def test_chaos_digest_matches_golden(name, seed):
    # The full 56-scenario sweep runs in tests/chaos; here a fast
    # cross-profile slice pins the goldens so a datapath change that
    # silently perturbs event order is caught in this suite too.
    golden = _load("chaos_digests_pr3.json")
    result = run_scenario(name, seed)
    assert result.digest == golden[f"{name}:{seed}"]
