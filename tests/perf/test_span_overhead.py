"""Span-tracking overhead: observing the gateway world must stay cheap.

The CI perf job pins ``gateway_world_observed`` against the committed
PR 3 quick baseline at a 10% threshold; this in-process A/B keeps a
(deliberately generous) functional bound so a pathological regression
in the span hot path fails locally and in the tier-1 suite, not only
in the calibrated CI job.
"""

from repro.perf.bench import _run_gateway_world, run_benchmarks


def test_observed_world_matches_plain_world_behaviour():
    plain = _run_gateway_world(60_000, 30_000, observed=False)
    observed = _run_gateway_world(60_000, 30_000, observed=True)
    # Tracking must not change what the gateway does — same packet count.
    assert observed == plain


def test_observed_bench_exists_and_reports():
    report = run_benchmarks(quick=True, reps=1,
                            only=["gateway_world", "gateway_world_observed"])
    rows = {row["bench"]: row for row in report["results"]}
    assert set(rows) == {"gateway_world", "gateway_world_observed"}
    # Identical workload: the observed variant sees the same packets.
    assert rows["gateway_world_observed"]["packets"] == rows["gateway_world"]["packets"]
    # Functional guard (generous 3x; CI pins the real 10% threshold
    # against the committed baseline): span tracking is a dict update
    # and a deque append per packet, not a second datapath.
    assert (rows["gateway_world_observed"]["ns_per_pkt"]
            <= rows["gateway_world"]["ns_per_pkt"] * 3.0)
