"""Property tests: the vectorized checksum equals the scalar oracle.

The fast path sums ``array('H')`` words in host byte order and swaps
the folded result once; the oracle walks 16-bit words big-endian per
RFC 1071.  Any divergence between the two is a wire-format bug.
"""

import struct

from hypothesis import given
from hypothesis import strategies as st

from repro.packet.checksum import (
    _scalar_ones_complement_sum,
    internet_checksum,
    ones_complement_sum,
    verify_checksum,
)


@given(st.binary(max_size=4096))
def test_vectorized_matches_scalar(data):
    assert ones_complement_sum(data) == _scalar_ones_complement_sum(data)


@given(st.binary(max_size=1024), st.integers(min_value=0, max_value=0xFFFF))
def test_vectorized_matches_scalar_with_initial(data, initial):
    assert ones_complement_sum(data, initial) == _scalar_ones_complement_sum(
        data, initial
    )


@given(st.binary(min_size=1, max_size=513).filter(lambda d: len(d) % 2 == 1))
def test_odd_length_pads_on_the_right(data):
    # RFC 1071: the odd trailing byte occupies the high half of the
    # final word.
    padded = data + b"\x00"
    assert ones_complement_sum(data) == ones_complement_sum(padded)
    assert ones_complement_sum(data) == _scalar_ones_complement_sum(data)


@given(st.binary(max_size=512), st.binary(max_size=512))
def test_chained_sums_equal_concatenated_sum(first, second):
    # Chaining via ``initial`` must equal one pass over the whole
    # buffer — this is how pseudo-header + segment checksums compose.
    # Word alignment matters, so only even-length first halves chain.
    if len(first) % 2:
        first = first + b"\x00"
    chained = ones_complement_sum(second, ones_complement_sum(first))
    assert chained == ones_complement_sum(first + second)


def test_empty_buffer():
    assert ones_complement_sum(b"") == 0
    assert ones_complement_sum(b"", 0x1234) == 0x1234
    assert internet_checksum(b"") == 0xFFFF


def test_all_zeros_and_all_ones():
    assert ones_complement_sum(b"\x00" * 64) == 0
    # 32 words of 0xFFFF sum (with end-around carry) back to 0xFFFF.
    assert ones_complement_sum(b"\xff" * 64) == 0xFFFF
    assert ones_complement_sum(b"\xff" * 64) == _scalar_ones_complement_sum(
        b"\xff" * 64
    )


def test_known_rfc1071_vector():
    # The worked example from RFC 1071 §3: 0001 f203 f4f5 f6f7.
    data = bytes.fromhex("0001f203f4f5f6f7")
    assert ones_complement_sum(data) == 0xDDF2
    assert _scalar_ones_complement_sum(data) == 0xDDF2
    assert internet_checksum(data) == 0x220D


@given(st.binary(min_size=2, max_size=1024).filter(lambda d: len(d) % 2 == 0))
def test_checksummed_buffer_verifies(data):
    checksum = internet_checksum(data)
    wire = data + struct.pack("!H", checksum)
    assert verify_checksum(wire)
