"""Simulator.pending() is an O(1) counter — assert it never drifts.

The counter is maintained at schedule, cancel, and fire time; the old
implementation rescanned the queue.  Under cancel churn (including
cancel-after-fire and double-cancel) the counter must agree with a
ground-truth scan of every queue structure at every step.
"""

import itertools
import random

from repro.sim import Simulator


def _heap_scan(sim):
    """Ground truth: live entries still sitting anywhere in the queue.

    Fired entries are popped before their callback runs, so anything
    still in a wheel bucket or the overflow heap is live unless its
    handle was cancelled.  (Fast events share one inert handle whose
    ``cancelled`` flag never sets, so they always count — exactly the
    live semantics.)
    """
    entries = itertools.chain(sim._overflow, *sim._wheel)
    return sum(1 for (_, _, handle, _, _) in entries if not handle.cancelled)


def test_pending_counts_scheduled_events():
    sim = Simulator()
    handles = [sim.schedule(i * 0.1, lambda: None) for i in range(1, 6)]
    assert sim.pending() == 5 == _heap_scan(sim)
    handles[0].cancel()
    assert sim.pending() == 4 == _heap_scan(sim)


def test_double_cancel_decrements_once():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.pending() == 1 == _heap_scan(sim)


def test_cancel_after_fire_is_a_noop():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    assert sim.pending() == 1
    handle.cancel()  # already fired: must not decrement
    assert sim.pending() == 1 == _heap_scan(sim)
    sim.run()
    assert sim.pending() == 0 == _heap_scan(sim)


def test_schedule_fast_events_count_and_drain():
    sim = Simulator()
    fired = []
    for i in range(4):
        sim.schedule_fast(0.1 * (i + 1), fired.append, i)
    assert sim.pending() == 4 == _heap_scan(sim)
    sim.run(until=0.25)
    assert fired == [0, 1]
    assert sim.pending() == 2 == _heap_scan(sim)
    sim.run()
    assert sim.pending() == 0 == _heap_scan(sim)


def test_pending_under_random_churn():
    rng = random.Random(4242)
    sim = Simulator()
    live = []
    for step in range(400):
        action = rng.random()
        if action < 0.5 or not live:
            live.append(sim.schedule(rng.uniform(0.0, 10.0), lambda: None))
        elif action < 0.75:
            victim = live.pop(rng.randrange(len(live)))
            victim.cancel()
            if rng.random() < 0.3:
                victim.cancel()  # double-cancel must stay a no-op
        else:
            sim.schedule_fast(rng.uniform(0.0, 10.0), lambda: None)
        assert sim.pending() == _heap_scan(sim), f"drift at step {step}"
    sim.run()
    assert sim.pending() == 0 == _heap_scan(sim)


def test_pending_drains_during_run():
    sim = Simulator()
    observed = []

    def probe():
        observed.append(sim.pending())

    for i in range(5):
        sim.schedule(float(i + 1), probe)
    sim.run()
    # Each firing removes itself before the callback runs.
    assert observed == [4, 3, 2, 1, 0]
