"""Unit tests for the zero-copy packet fast paths.

``fork()`` gives routers a cheap forwarding copy (private IP header,
copy-on-write L4); ``own_l4()`` materializes the L4 header before any
in-place mutation; the cached flow key must survive both.  The merge
engine's deque-backed ``take`` must drain partially-consumed chunks
byte-exactly.
"""

from repro.core.tcp_merge import StreamContext, TcpMergeEngine
from repro.packet import TCPFlags, build_tcp, build_udp


def test_fork_shares_l4_and_payload():
    packet = build_tcp("10.0.0.1", "10.0.0.2", 1000, 2000, payload=b"x" * 64)
    forked = packet.fork()
    assert forked.l4 is packet.l4
    assert forked.payload is packet.payload
    assert forked.ip is not packet.ip
    forked.ip.ttl -= 1
    assert packet.ip.ttl == 64 and forked.ip.ttl == 63
    assert forked.total_len == packet.total_len


def test_own_l4_materializes_shared_header():
    packet = build_tcp("10.0.0.1", "10.0.0.2", 1000, 2000, seq=7, mss=1460)
    forked = packet.fork()
    owned = forked.own_l4()
    assert owned is forked.l4
    assert owned is not packet.l4
    owned.seq = 99
    assert packet.tcp.seq == 7  # the original is untouched
    # A second call is a no-op once the header is private.
    assert forked.own_l4() is owned


def test_own_l4_without_fork_returns_header_unchanged():
    packet = build_tcp("10.0.0.1", "10.0.0.2", 1000, 2000)
    assert packet.own_l4() is packet.l4


def test_flow_key_cached_and_survives_fork_and_copy():
    packet = build_udp("10.0.0.1", "10.0.0.2", 53, 5353, payload=b"q")
    key = packet.flow_key()
    assert key is packet.flow_key()  # cached, not recomputed
    assert packet.fork().flow_key() == key
    assert packet.copy().flow_key() == key


def test_copy_is_fully_private():
    packet = build_tcp("10.0.0.1", "10.0.0.2", 1, 2, payload=b"abc", flags=TCPFlags.ACK)
    dup = packet.copy()
    assert dup.l4 is not packet.l4
    dup.tcp.seq = 123
    dup.meta["tag"] = True
    assert packet.tcp.seq == 0
    assert "tag" not in packet.meta


def _segment(seq, payload):
    return build_tcp(
        "10.0.0.1", "10.0.0.2", 1000, 2000,
        payload=payload, seq=seq, flags=TCPFlags.ACK,
    )


def test_stream_context_take_partial_chunks():
    context = StreamContext(_segment(0, b"abcdef"), now=0.0)
    context.append(_segment(6, b"ghij"), now=0.0)
    assert context.buffered == 10
    assert context.take(4) == b"abcd"
    assert context.take(4) == b"efgh"
    assert context.buffered == 2
    assert context.take(10) == b"ij"  # over-ask drains what's left
    assert context.buffered == 0


def test_stream_context_export_with_partial_head():
    context = StreamContext(_segment(0, b"abcdef"), now=0.0)
    context.append(_segment(6, b"ghij"), now=0.0)
    context.take(3)
    exported = context.export_segment()
    assert exported.payload == b"defghij"
    assert context.buffered == 7  # export never consumes


def test_merge_engine_resegments_across_chunks():
    engine = TcpMergeEngine(target_payload=5)
    assert engine.feed(_segment(0, b"abc")) == []
    (out,) = engine.feed(_segment(3, b"defg"))
    assert out.payload == b"abcde"
    assert engine.pending_bytes() == 2
    flushed = engine.flush()
    assert [p.payload for p in flushed] == [b"fg"]
    assert engine.pending_bytes() == 0
