"""Tests for PX-caravan encoding and the merge/split engines."""

import pytest

from repro.core import (
    CaravanMergeEngine,
    CaravanSplitEngine,
    decode_caravan,
    encode_caravan,
    is_caravan,
)
from repro.packet import PX_CARAVAN_TOS, build_tcp, build_udp


def dgram(payload=b"", ip_id=None, flow=0, size=None):
    if size is not None:
        payload = bytes(size)
    return build_udp("203.0.113.9", "10.1.0.7", 30000 + flow, 443,
                     payload=payload, ip_id=ip_id)


class TestCaravanFormat:
    def test_roundtrip(self):
        originals = [dgram(b"alpha" * 100), dgram(b"beta" * 100), dgram(b"gamma")]
        caravan = encode_caravan(originals)
        assert is_caravan(caravan)
        assert caravan.ip.tos == PX_CARAVAN_TOS
        restored = decode_caravan(caravan)
        assert [p.payload for p in restored] == [p.payload for p in originals]
        assert all(p.udp.dst_port == 443 for p in restored)
        assert all(p.ip.tos == 0 for p in restored)

    def test_outer_length_covers_all_inner(self):
        originals = [dgram(size=1000) for _ in range(5)]
        caravan = encode_caravan(originals)
        # 5 x (8 B inner header + 1000 B payload) + outer 28 B.
        assert caravan.total_len == 28 + 5 * 1008
        assert caravan.total_len == len(caravan.to_bytes())

    def test_restored_ip_ids_consecutive(self):
        originals = [dgram(size=100, ip_id=500 + i) for i in range(3)]
        caravan = encode_caravan(originals)
        restored = decode_caravan(caravan)
        ids = [p.ip.identification for p in restored]
        assert ids == [caravan.ip.identification,
                       caravan.ip.identification + 1,
                       caravan.ip.identification + 2]

    def test_single_packet_not_wrapped(self):
        packet = dgram(b"solo")
        assert encode_caravan([packet]) is packet

    def test_mixed_flows_rejected(self):
        with pytest.raises(ValueError):
            encode_caravan([dgram(b"a", flow=0), dgram(b"b", flow=1)])

    def test_tcp_rejected(self):
        tcp = build_tcp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"t")
        with pytest.raises(ValueError):
            encode_caravan([tcp, tcp])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            encode_caravan([])

    def test_non_caravan_decode_passthrough(self):
        packet = dgram(b"plain")
        assert decode_caravan(packet) == [packet]

    def test_corrupt_caravan_rejected(self):
        caravan = encode_caravan([dgram(size=100, ip_id=1), dgram(size=100, ip_id=2)])
        caravan.payload = caravan.payload[:5]  # truncate mid inner header
        with pytest.raises(ValueError):
            decode_caravan(caravan)


class TestCaravanMergeEngine:
    def test_merges_consecutive_ids(self):
        engine = CaravanMergeEngine(max_payload=8972)
        for i in range(6):
            emitted = engine.feed(dgram(size=1200, ip_id=100 + i))
            assert emitted == []
        [caravan] = engine.flush()
        assert is_caravan(caravan)
        assert caravan.meta["caravan_inner"] == 6

    def test_id_gap_flushes(self):
        engine = CaravanMergeEngine(max_payload=8972)
        engine.feed(dgram(size=1200, ip_id=1))
        engine.feed(dgram(size=1200, ip_id=2))
        emitted = engine.feed(dgram(size=1200, ip_id=7))  # loss upstream
        assert len(emitted) == 1
        assert emitted[0].meta["caravan_inner"] == 2

    def test_capacity_flush(self):
        engine = CaravanMergeEngine(max_payload=5000)
        emitted = []
        for i in range(10):
            emitted.extend(engine.feed(dgram(size=1200, ip_id=i)))
        emitted.extend(engine.flush())
        # Each caravan holds at most 4 x 1208 = 4832 <= 5000 bytes.
        assert all(p.total_len <= 5028 for p in emitted)
        total_inner = sum(p.meta.get("caravan_inner", 1) for p in emitted)
        assert total_inner == 10

    def test_short_datagram_terminates(self):
        engine = CaravanMergeEngine(max_payload=8972)
        engine.feed(dgram(size=1200, ip_id=1))
        emitted = engine.feed(dgram(size=300, ip_id=2))
        assert len(emitted) == 1
        assert emitted[0].meta["caravan_inner"] == 2

    def test_timeout_flush(self):
        engine = CaravanMergeEngine(max_payload=8972)
        engine.feed(dgram(size=1000, ip_id=1), now=0.0)
        assert engine.flush_older_than(now=0.0002, max_age=0.0005) == []
        [caravan] = engine.flush_older_than(now=0.001, max_age=0.0005)
        assert caravan is not None

    def test_existing_caravan_passthrough(self):
        engine = CaravanMergeEngine(max_payload=8972)
        caravan = encode_caravan([dgram(size=100, ip_id=1), dgram(size=100, ip_id=2)])
        assert engine.feed(caravan) == [caravan]

    def test_roundtrip_through_engines(self):
        merge = CaravanMergeEngine(max_payload=8972)
        split = CaravanSplitEngine()
        originals = [dgram(size=1200, ip_id=50 + i) for i in range(12)]
        transported = []
        for packet in originals:
            transported.extend(merge.feed(packet))
        transported.extend(merge.flush())
        restored = []
        for packet in transported:
            restored.extend(split.process(packet))
        assert [p.payload for p in restored] == [p.payload for p in originals]
        assert split.opened == merge.built

    def test_tiny_max_payload_rejected(self):
        with pytest.raises(ValueError):
            CaravanMergeEngine(max_payload=8)
