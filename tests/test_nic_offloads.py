"""Tests for LRO/GRO coalescing, UDP GRO, and TSO segmentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nic import TcpCoalescer, UdpGroCoalescer, segment_tcp
from repro.packet import TCPFlags, build_tcp, build_udp


def tcp_seg(seq, payload_len, flow=0, flags=TCPFlags.ACK, payload_byte=b"a"):
    return build_tcp(
        "10.0.0.1",
        "10.0.0.2",
        1000 + flow,
        80,
        payload=payload_byte * payload_len,
        seq=seq,
        flags=flags,
    )


def stream(count, size=1000, flow=0, start_seq=0):
    return [tcp_seg(start_seq + i * size, size, flow=flow) for i in range(count)]


class TestTcpCoalescer:
    def test_contiguous_segments_merge(self):
        lro = TcpCoalescer(max_bytes=10000)
        emitted = []
        for packet in stream(5):
            emitted.extend(lro.feed(packet))
        assert emitted == []  # still aggregating
        merged = lro.flush()
        assert len(merged) == 1
        assert len(merged[0].payload) == 5000
        assert merged[0].meta["merged_from"] == 5

    def test_max_bytes_triggers_flush(self):
        lro = TcpCoalescer(max_bytes=3000)
        emitted = []
        for packet in stream(7):
            emitted.extend(lro.feed(packet))
        # Every 3 segments fills 3000 B and flushes.
        assert len(emitted) == 2
        assert all(len(p.payload) == 3000 for p in emitted)

    def test_out_of_order_flushes(self):
        lro = TcpCoalescer()
        lro.feed(tcp_seg(0, 1000))
        lro.feed(tcp_seg(1000, 1000))
        emitted = lro.feed(tcp_seg(5000, 1000))  # gap
        assert len(emitted) == 1
        assert len(emitted[0].payload) == 2000
        # The out-of-order packet starts a fresh context.
        assert len(lro.flush()) == 1

    def test_psh_flushes_immediately(self):
        lro = TcpCoalescer()
        lro.feed(tcp_seg(0, 1000))
        emitted = lro.feed(tcp_seg(1000, 1000, flags=TCPFlags.ACK | TCPFlags.PSH))
        assert len(emitted) == 1
        assert emitted[0].payload == b"a" * 2000
        assert emitted[0].tcp.psh

    def test_control_flags_pass_through_and_flush(self):
        lro = TcpCoalescer()
        lro.feed(tcp_seg(0, 1000))
        fin = tcp_seg(1000, 0, flags=TCPFlags.ACK | TCPFlags.FIN)
        emitted = lro.feed(fin)
        assert len(emitted) == 2
        assert emitted[1] is fin

    def test_pure_acks_pass_through_without_flushing(self):
        lro = TcpCoalescer()
        lro.feed(tcp_seg(0, 1000))
        ack = tcp_seg(1000, 0)
        assert lro.feed(ack) == [ack]
        assert len(lro.flush()) == 1  # context survived

    def test_different_flows_do_not_merge(self):
        lro = TcpCoalescer()
        lro.feed(tcp_seg(0, 1000, flow=0))
        lro.feed(tcp_seg(0, 1000, flow=1))
        merged = lro.flush()
        assert len(merged) == 2
        assert all(p.meta.get("merged_from", 1) == 1 for p in merged)

    def test_context_eviction_under_interleaving(self):
        # 8 flows through a 4-context LRO: evictions cut aggregation.
        lro = TcpCoalescer(max_contexts=4)
        emitted = []
        for round_index in range(4):
            for flow in range(8):
                emitted.extend(lro.feed(tcp_seg(round_index * 500, 500, flow=flow)))
        emitted.extend(lro.flush())
        assert lro.stats_evictions > 0
        # With evictions, mean aggregation is well below the 4-round max.
        mean = sum(p.meta.get("merged_from", 1) for p in emitted) / len(emitted)
        assert mean < 4

    def test_merged_header_takes_last_ack_window(self):
        lro = TcpCoalescer()
        first = tcp_seg(0, 500)
        first.tcp.ack, first.tcp.window = 10, 100
        second = tcp_seg(500, 500)
        second.tcp.ack, second.tcp.window = 20, 50
        lro.feed(first)
        lro.feed(second)
        merged = lro.flush()[0]
        assert merged.tcp.ack == 20
        assert merged.tcp.window == 50
        assert merged.tcp.seq == 0

    def test_flush_older_than(self):
        lro = TcpCoalescer()
        lro.feed(tcp_seg(0, 500, flow=0), now=0.0)
        lro.feed(tcp_seg(0, 500, flow=1), now=1.0)
        old = lro.flush_older_than(now=1.5, max_age=1.0)
        assert len(old) == 1
        assert len(lro) == 1

    def test_non_tcp_passthrough(self):
        lro = TcpCoalescer()
        udp = build_udp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"u")
        assert lro.feed(udp) == [udp]

    def test_merged_total_length_consistent(self):
        lro = TcpCoalescer()
        for packet in stream(3, size=1448):
            lro.feed(packet)
        merged = lro.flush()[0]
        assert merged.total_len == 20 + 20 + 3 * 1448
        assert merged.total_len == len(merged.to_bytes())

    @settings(max_examples=25)
    @given(sizes=st.lists(st.integers(min_value=1, max_value=1460), min_size=1, max_size=40))
    def test_no_bytes_lost_property(self, sizes):
        lro = TcpCoalescer(max_bytes=9000)
        seq = 0
        total_in = 0
        emitted = []
        for size in sizes:
            emitted.extend(lro.feed(tcp_seg(seq, size)))
            seq += size
            total_in += size
        emitted.extend(lro.flush())
        assert sum(len(p.payload) for p in emitted) == total_in


class TestUdpGro:
    def udp(self, length, flow=0):
        return build_udp("10.0.0.1", "10.0.0.2", 2000 + flow, 443, payload=b"q" * length)

    def test_equal_length_datagrams_merge(self):
        gro = UdpGroCoalescer()
        for _ in range(4):
            assert gro.feed(self.udp(1200)) == []
        bundles = gro.flush()
        assert len(bundles) == 1
        assert bundles[0].meta["merged_from"] == 4
        assert bundles[0].meta["gso_size"] == 1200

    def test_short_datagram_terminates_bundle(self):
        gro = UdpGroCoalescer()
        gro.feed(self.udp(1200))
        gro.feed(self.udp(1200))
        emitted = gro.feed(self.udp(300))
        assert len(emitted) == 1
        assert emitted[0].meta["merged_from"] == 3
        assert len(emitted[0].payload) == 2700

    def test_longer_datagram_starts_new_bundle(self):
        gro = UdpGroCoalescer()
        gro.feed(self.udp(500))
        emitted = gro.feed(self.udp(1200))
        assert len(emitted) == 1  # the 500 B bundle flushed alone
        assert emitted[0].meta.get("merged_from", 1) == 1

    def test_flows_kept_separate(self):
        gro = UdpGroCoalescer()
        gro.feed(self.udp(1000, flow=0))
        gro.feed(self.udp(1000, flow=1))
        assert len(gro.flush()) == 2

    def test_max_bytes_respected(self):
        gro = UdpGroCoalescer(max_bytes=2500)
        gro.feed(self.udp(1000))
        gro.feed(self.udp(1000))
        emitted = gro.feed(self.udp(1000))  # would exceed 2500
        assert len(emitted) == 1
        assert emitted[0].meta["merged_from"] == 2


class TestSegmentTcp:
    def big(self, payload_len, flags=TCPFlags.ACK, seq=1_000_000):
        return build_tcp("10.0.0.1", "10.0.0.2", 1, 2, payload=b"m" * payload_len,
                         seq=seq, flags=flags)

    def test_small_packet_unchanged(self):
        packet = self.big(1000)
        assert segment_tcp(packet, 1460) == [packet]

    def test_segment_count_and_sizes(self):
        segments = segment_tcp(self.big(9000), 1460)
        assert len(segments) == 7  # ceil(9000/1460)
        assert [len(s.payload) for s in segments[:-1]] == [1460] * 6
        assert len(segments[-1].payload) == 9000 - 6 * 1460

    def test_sequence_numbers_advance(self):
        segments = segment_tcp(self.big(5000, seq=100), 1000)
        assert [s.tcp.seq for s in segments] == [100, 1100, 2100, 3100, 4100]

    def test_seq_wraps_around(self):
        segments = segment_tcp(self.big(3000, seq=0xFFFFFF00), 1000)
        assert segments[1].tcp.seq == (0xFFFFFF00 + 1000) & 0xFFFFFFFF

    def test_fin_psh_only_on_last(self):
        segments = segment_tcp(self.big(3000, flags=TCPFlags.ACK | TCPFlags.FIN | TCPFlags.PSH), 1000)
        assert all(not s.tcp.fin and not s.tcp.psh for s in segments[:-1])
        assert segments[-1].tcp.fin and segments[-1].tcp.psh

    def test_cwr_only_on_first(self):
        segments = segment_tcp(self.big(3000, flags=TCPFlags.ACK | TCPFlags.CWR), 1000)
        assert segments[0].tcp.flags & TCPFlags.CWR
        assert all(not (s.tcp.flags & TCPFlags.CWR) for s in segments[1:])

    def test_fresh_ip_ids_for_tail_segments(self):
        segments = segment_tcp(self.big(3000), 1000)
        ids = [s.ip.identification for s in segments]
        assert len(set(ids)) == 3

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            segment_tcp(self.big(100), 0)
        with pytest.raises(ValueError):
            segment_tcp(build_udp("1.1.1.1", "2.2.2.2", 1, 2), 1000)

    @given(
        payload_len=st.integers(min_value=1, max_value=70000),
        mss=st.integers(min_value=536, max_value=9000),
    )
    @settings(max_examples=30)
    def test_split_preserves_bytes_property(self, payload_len, mss):
        if payload_len + 40 > 65535:
            payload_len = 65000
        packet = self.big(payload_len)
        segments = segment_tcp(packet, mss)
        assert b"".join(s.payload for s in segments) == packet.payload
        assert all(len(s.payload) <= mss for s in segments)

    def test_split_then_merge_is_identity(self):
        packet = self.big(9000)
        segments = segment_tcp(packet, 1460)
        lro = TcpCoalescer(max_bytes=20000)
        emitted = []
        for segment in segments:
            emitted.extend(lro.feed(segment))
        emitted.extend(lro.flush())
        assert len(emitted) == 1
        assert emitted[0].payload == packet.payload
        assert emitted[0].tcp.seq == packet.tcp.seq
