"""Batched dispatch equivalence: the vectorized worker path is a pure
Python-overhead optimization.

``GatewayWorker.process_batch`` amortizes the per-packet prologue
(mode/tracer/span checks, flow-table lookups) over a poll burst.  The
*modeled* outcome — every stat counter, every charged cycle, every
emitted byte — must be indistinguishable from packet-at-a-time
``process``; the only permitted difference is egress *interleaving*
(flow-grouped within a batch) and which process-global IP IDs merged
packets happen to draw.
"""

import random

from repro.core.config import GatewayConfig
from repro.core.dispatch import GatewayDatapath
from repro.core.worker import Bound, GatewayWorker, WorkerMode
from repro.workload import interleave, make_tcp_sources


def _stream(count=2000):
    down = make_tcp_sources(12, 1448, tag=Bound.INBOUND)
    up = make_tcp_sources(12, 8948, tag=Bound.OUTBOUND, base_port=30000,
                          client_net="10.1.0", server_net="198.51.100")
    rng = random.Random(0x5EED)
    return list(interleave(down * 2 + up, count, rng, mean_run=8.0))


def _flow_outputs(outputs):
    """Egress grouped per flow, with process-global IP IDs normalized.

    Merged/split packets draw fresh IDs from one process-wide counter;
    the batch path visits flows in grouped order, so the *assignment*
    of IDs across flows shifts while every byte of protocol content
    stays equal.  Zeroing the ID before comparison pins exactly that.
    """
    flows = {}
    for packet in outputs:
        copy = packet.copy()
        copy.ip.identification = 0
        flows.setdefault(packet.flow_key(), []).append(copy.to_bytes())
    return flows


def _run(batched):
    datapath = GatewayDatapath(GatewayConfig())
    outputs = datapath.process_stream(_stream(), batched=batched)
    return datapath, outputs


def test_batched_stream_matches_scalar_stream():
    scalar_dp, scalar_out = _run(batched=False)
    batched_dp, batched_out = _run(batched=True)

    scalar_stats = scalar_dp.combined_stats()
    batched_stats = batched_dp.combined_stats()
    for field in vars(scalar_stats):
        s, b = getattr(scalar_stats, field), getattr(batched_stats, field)
        if isinstance(s, (int, bool)):
            assert s == b, f"stat {field}: scalar={s} batched={b}"

    scalar_acct = scalar_dp.combined_account()
    batched_acct = batched_dp.combined_account()
    assert batched_acct.cycles == scalar_acct.cycles
    assert abs(batched_acct.mem_bytes - scalar_acct.mem_bytes) <= max(
        1e-6 * scalar_acct.mem_bytes, 1e-6
    )
    assert batched_acct.goodput_bytes == scalar_acct.goodput_bytes

    assert _flow_outputs(batched_out) == _flow_outputs(scalar_out)


def test_batched_per_worker_accounts_match():
    scalar_dp, _ = _run(batched=False)
    batched_dp, _ = _run(batched=True)
    for scalar_w, batched_w in zip(scalar_dp.workers, batched_dp.workers):
        assert batched_w.account.cycles == scalar_w.account.cycles, (
            f"worker {scalar_w.index} cycle drift"
        )
        assert batched_w.stats.rx_packets == scalar_w.stats.rx_packets


def test_batch_falls_back_per_packet_outside_normal_mode():
    # Degraded/bypass modes and attached tracers take the scalar path
    # packet-by-packet; outputs must equal calling process() directly.
    config = GatewayConfig()
    worker_a = GatewayWorker(config, index=0)
    worker_b = GatewayWorker(config, index=0)
    worker_a.mode = WorkerMode.BYPASS
    worker_b.mode = WorkerMode.BYPASS
    stream = _stream(count=200)
    batch_out = worker_a.process_batch([p for p, _ in stream], Bound.INBOUND)
    scalar_out = []
    for packet, _ in stream:
        scalar_out.extend(worker_b.process(packet, Bound.INBOUND))
    assert [p.to_bytes() for p in batch_out] == [p.to_bytes() for p in scalar_out]
    assert worker_a.stats.rx_packets == worker_b.stats.rx_packets


def test_mid_batch_elephant_promotion_matches_scalar():
    # Promotion thresholds are evaluated per packet inside the batch
    # (not once per group), so a flow crossing the elephant threshold
    # mid-burst promotes at the same packet either way.
    scalar_w = GatewayWorker(GatewayConfig(), index=0)
    batched_w = GatewayWorker(GatewayConfig(), index=0)
    sources = make_tcp_sources(1, 1448, tag=Bound.INBOUND)
    packets = [sources[0].next_packet() for _ in range(600)]
    clones = [p.copy() for p in packets]
    for packet in packets:
        scalar_w.process(packet, Bound.INBOUND)
    batched_w.process_batch(clones, Bound.INBOUND)
    assert (
        batched_w.classifier.promotions == scalar_w.classifier.promotions
    )
    assert batched_w.classifier.promotions >= 1, "workload never promoted"
