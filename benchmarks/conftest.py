"""Shared fixtures for the reproduction benchmarks.

Each benchmark builds an :class:`ExperimentReport` (paper value vs
measured value per metric) and registers it with the ``reports``
fixture; all reports are printed in the terminal summary so the
paper-vs-measured comparison survives pytest's output capture.
"""

import pytest

from repro.analysis import ExperimentReport

_COLLECTED = []


@pytest.fixture
def report():
    """Create and auto-register an ExperimentReport factory."""

    def factory(experiment: str, description: str) -> ExperimentReport:
        experiment_report = ExperimentReport(experiment, description)
        _COLLECTED.append(experiment_report)
        return experiment_report

    return factory


def pytest_terminal_summary(terminalreporter):
    if not _COLLECTED:
        return
    terminalreporter.write_sep("=", "paper vs measured")
    for experiment_report in _COLLECTED:
        terminalreporter.write_line("")
        terminalreporter.write_line(experiment_report.render())
