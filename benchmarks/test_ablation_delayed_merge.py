"""Ablation — delayed merging (§4.1).

PXGW's delayed merging holds a partially filled merge context for a
short timeout hoping for contiguous successors, instead of flushing at
every poll batch the way the DPDK GRO library does.  This ablation
isolates that one knob on an otherwise identical PX configuration: the
conversion yield gap is the technique's entire contribution.
"""

import random

import pytest

from repro.core import Bound, GatewayConfig, GatewayDatapath
from repro.cpu import XEON_6554S
from repro.workload import interleave, make_tcp_sources

WARMUP = 20_000
MEASURE = 60_000


def run(delayed: bool, seed: int = 9):
    config = GatewayConfig(delayed_merge=delayed, hairpin_small_flows=False)
    datapath = GatewayDatapath(config)
    down = make_tcp_sources(400, 1448, tag=Bound.INBOUND)
    rng = random.Random(seed)
    datapath.process_stream(interleave(down, WARMUP, rng, 24.0), final_flush=False)
    datapath.reset_measurement()
    datapath.process_stream(interleave(down, MEASURE, rng, 24.0), final_flush=False)
    return (
        datapath.conversion_yield,
        datapath.sustainable_throughput_bps(XEON_6554S),
    )


def test_ablation_delayed_merge(benchmark, report):
    results = benchmark.pedantic(
        lambda: {"delayed": run(True), "per-batch": run(False)},
        rounds=1, iterations=1,
    )

    table = report("Ablation: delayed merge", "Flush policy vs conversion yield")
    for name, (cy, tput) in results.items():
        table.add(f"{name} flush: conversion yield", None, round(cy, 3))
        table.add(f"{name} flush: throughput", None, tput, unit="bps")

    delayed_cy, _ = results["delayed"]
    batch_cy, _ = results["per-batch"]
    # Delayed merging is what pushes yield from 'most packets partial'
    # territory into the paper's 93-94 % regime.
    assert delayed_cy > 0.90
    assert batch_cy < delayed_cy - 0.10
