"""Figure 5c — RX throughput of an endpoint receiver inside a b-network.

Paper: with 100 TCP flows on a single RX core, translating to a 9 KB
iMTU inside the b-network improves receiver throughput 1.5x–1.8x across
offload configurations (at 100 interleaved flows, G/LRO aggregates
poorly, so the offloads cannot substitute for the larger MTU).  The
PX-caravan UDP case with UDP_GRO gains 2.4x over the 1500 B baseline.

Here: the 9 KB arrival stream is *actually produced by the PXGW
datapath* from the legacy-MTU stream, then both streams are priced on
the endpoint receiver model (busy-polling regime: a loaded server).
"""

import random

import pytest

from repro.core import Bound, GatewayConfig, GatewayDatapath
from repro.cpu import XEON_5512U
from repro.nic import ReceiverConfig, ReceiverModel
from repro.workload import interleave, make_tcp_sources, make_udp_sources

FLOWS = 100
PACKETS = 40_000

OFFLOAD_CONFIGS = [
    ("none", False, False),
    ("LRO", True, False),
    ("GRO", False, True),
    ("LRO+GRO", True, True),
]


def legacy_stream(udp: bool = False):
    make = make_udp_sources if udp else make_tcp_sources
    sources = make(FLOWS, 1472 if udp else 1448)
    # 100 flows sharing one link interleave at packet granularity.
    return [p for p, _ in interleave(sources, PACKETS, random.Random(17), 1.0)]


def translate_through_pxgw(packets):
    """Run the legacy stream through a PXGW and return its b-network output."""
    datapath = GatewayDatapath(GatewayConfig(elephant_threshold_packets=2))
    outputs = datapath.process_stream(
        ((packet, Bound.INBOUND) for packet in packets), final_flush=True
    )
    return outputs


def receiver_tput(arrivals, lro=False, gro=False, udp_gro=False):
    model = ReceiverModel(ReceiverConfig(lro=lro, gro=gro, udp_gro=udp_gro,
                                         busy_polling=True))
    model.process(arrivals)
    return model.account.sustainable_goodput_bps(XEON_5512U, cores=1)


def test_fig5c_receiver(benchmark, report):
    def run():
        legacy = legacy_stream()
        translated = translate_through_pxgw(list(legacy))
        tcp = {}
        for name, lro, gro in OFFLOAD_CONFIGS:
            tcp[name] = (
                receiver_tput(list(legacy), lro=lro, gro=gro),
                receiver_tput(list(translated), lro=lro, gro=gro),
            )
        udp_legacy = legacy_stream(udp=True)
        udp_translated = translate_through_pxgw(list(udp_legacy))
        udp = (
            receiver_tput(list(udp_legacy), udp_gro=True),
            receiver_tput(list(udp_translated), udp_gro=True),
        )
        return tcp, udp

    tcp, udp = benchmark.pedantic(run, rounds=1, iterations=1)

    table = report("Figure 5c", "Receiver RX throughput, 100 flows, 1 core")
    for name, _, _ in OFFLOAD_CONFIGS:
        legacy_tput, translated_tput = tcp[name]
        table.add(f"TCP {name}: 1500 B e2e", None, legacy_tput, unit="bps")
        table.add(f"TCP {name}: 9 KB iMTU via PXGW", None, translated_tput, unit="bps")
        table.add(f"TCP {name}: gain", 1.65, translated_tput / legacy_tput,
                  unit="x", note="paper: 1.5x-1.8x")
    table.add("UDP_GRO 1500 B", None, udp[0], unit="bps")
    table.add("PX-caravan + UDP_GRO", None, udp[1], unit="bps")
    table.add("UDP caravan gain", 2.4, udp[1] / udp[0], unit="x")

    # TCP: every offload configuration gains ~1.5x-2x from the iMTU.
    for name, _, _ in OFFLOAD_CONFIGS:
        legacy_tput, translated_tput = tcp[name]
        assert 1.4 < translated_tput / legacy_tput < 2.2, name
    # UDP: PX-caravan with UDP_GRO gains ~2.4x.
    assert 1.9 < udp[1] / udp[0] < 2.9
