"""Figure 1a — Impact of MTU size on 5G UPF performance.

Paper: the OMEC UPF on a single core scales almost linearly with MTU,
reaching 208 Gbps at 9000 B — 5.6x its 1500 B rate — because the UPF's
work (GTP-U decap/encap, PDR/FAR/QER lookups) is per-packet.

Here: the same workload (800 flows through the UPF pipeline, downlink)
runs through :class:`repro.upf.Upf`, with the cycle account scaled to
one core of the testbed CPU.
"""

import pytest

from repro.cpu import XEON_6554S
from repro.packet import build_udp, str_to_ip
from repro.upf import Upf

MTUS = [1500, 3000, 6000, 9000]
FLOWS = 800
PACKETS = 4000

N3 = str_to_ip("10.100.0.1")
GNB = str_to_ip("10.100.0.2")
UE_BASE = str_to_ip("172.16.0.1")
DN = str_to_ip("93.184.216.34")


def upf_throughput_bps(mtu: int) -> float:
    """Run the downlink sample at *mtu* and scale to one core."""
    upf = Upf(n3_address=N3)
    for index in range(FLOWS):
        upf.sessions.create_session(
            seid=index, ue_ip=UE_BASE + index, uplink_teid=10_000 + index,
            gnb_teid=20_000 + index, gnb_ip=GNB,
        )
    payload_len = mtu - 28
    for index in range(PACKETS):
        packet = build_udp(DN, UE_BASE + (index % FLOWS), 80, 4000,
                           payload=b"\0" * payload_len)
        upf.process(packet)
    return upf.account.sustainable_goodput_bps(XEON_6554S, cores=1)


def test_fig1a_upf_mtu_sweep(benchmark, report):
    results = benchmark.pedantic(
        lambda: {mtu: upf_throughput_bps(mtu) for mtu in MTUS},
        rounds=1, iterations=1,
    )

    table = report("Figure 1a", "5G UPF throughput vs MTU (1 core, 800 flows)")
    for mtu in MTUS:
        paper = {1500: 208e9 / 5.6, 9000: 208e9}.get(mtu)
        table.add(f"UPF throughput @ {mtu} B MTU", paper, results[mtu], unit="bps")
    speedup = results[9000] / results[1500]
    table.add("speedup 9000 B vs 1500 B", 5.6, speedup, unit="x")

    # Paper anchors: 208 Gbps at 9 KB, 5.6x over 1500 B.
    assert results[9000] == pytest.approx(208e9, rel=0.15)
    assert speedup == pytest.approx(5.6, rel=0.15)
    # Near-linear scaling across the sweep.
    assert results[3000] == pytest.approx(results[1500] * 2, rel=0.2)
    assert results[6000] == pytest.approx(results[1500] * 4, rel=0.2)
