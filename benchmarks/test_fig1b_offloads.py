"""Figure 1b — Impact of G/LRO on a single-flow receiver.

Paper: with GRO+LRO a single flow reaches 50.1 Gbps at the legacy
1500 B MTU — more than a 9000 B MTU achieves *without* offloads — and
9000 B plus offloads is best of all.

Here: one in-order TCP stream runs through :class:`ReceiverModel` under
each offload configuration, priced on one endpoint core.
"""

import random

import pytest

from repro.cpu import XEON_5512U
from repro.nic import ReceiverConfig, ReceiverModel
from repro.workload import interleave, make_tcp_sources

PACKETS = 25_000
POLL_BATCH = 40

CONFIGS = [
    ("1500 / none", 1448, False, False),
    ("1500 / GRO", 1448, False, True),
    ("1500 / LRO", 1448, True, False),
    ("1500 / GRO+LRO", 1448, True, True),
    ("9000 / none", 8948, False, False),
    ("9000 / GRO+LRO", 8948, True, True),
]


def receiver_throughput(payload: int, lro: bool, gro: bool) -> float:
    sources = make_tcp_sources(1, payload)
    model = ReceiverModel(ReceiverConfig(lro=lro, gro=gro, poll_batch=POLL_BATCH))
    arrivals = (p for p, _ in interleave(sources, PACKETS, random.Random(11), 64.0))
    model.process(arrivals)
    return model.account.sustainable_goodput_bps(XEON_5512U, cores=1)


def test_fig1b_offload_sweep(benchmark, report):
    results = benchmark.pedantic(
        lambda: {name: receiver_throughput(payload, lro, gro)
                 for name, payload, lro, gro in CONFIGS},
        rounds=1, iterations=1,
    )

    table = report("Figure 1b", "Single-flow RX throughput vs offloads (1 core)")
    for name, *_ in CONFIGS:
        paper = 50.1e9 if name == "1500 / GRO+LRO" else None
        table.add(name, paper, results[name], unit="bps")

    # Anchor: G/LRO at 1500 B reaches ~50 Gbps.
    assert results["1500 / GRO+LRO"] == pytest.approx(50.1e9, rel=0.1)
    # Claim: G/LRO at 1500 B beats plain 9000 B ("is a large MTU really
    # necessary?").
    assert results["1500 / GRO+LRO"] > results["9000 / none"]
    # Offloads stack sensibly.
    assert results["1500 / none"] < results["1500 / GRO"] < results["1500 / LRO"]
    # And 9000 B with offloads is the best configuration overall.
    assert results["9000 / GRO+LRO"] >= max(
        tput for name, tput in results.items() if name != "9000 / GRO+LRO"
    )
