"""Figure 5b — PXGW UDP (PX-caravan) throughput and conversion yield.

Paper: with 800 bidirectional UDP flows, peak throughput is slightly
below the TCP case (no LRO/TSO assist for UDP), conversion yield stays
comparable thanks to delayed merging, and header-only DMA again raises
the peak.

Here: downlink flows are eMTU datagram streams with consecutive IP IDs
(caravan-mergeable); uplink flows arrive as caravans built by modified
in-network senders and are split at the egress.
"""

import random

import pytest

from repro.core import Bound, GatewayConfig, GatewayDatapath, encode_caravan
from repro.cpu import XEON_6554S
from repro.workload import interleave, make_udp_sources

WARMUP = 30_000
MEASURE = 90_000
MEAN_RUN = 24.0


class CaravanSource:
    """An uplink source whose host pre-bundles datagrams into caravans."""

    def __init__(self, inner_source, inner_count: int = 6):
        self.inner = inner_source
        self.inner_count = inner_count
        self.tag = Bound.OUTBOUND

    def next_packet(self):
        return encode_caravan(
            [self.inner.next_packet() for _ in range(self.inner_count)]
        )


def run_configuration(config: GatewayConfig, seed: int = 2):
    datapath = GatewayDatapath(config)
    down = make_udp_sources(400, 1472, tag=Bound.INBOUND)
    up_inner = make_udp_sources(400, 1472, base_port=40000,
                                client_net="10.1.0", server_net="198.51.100")
    sources = down * 6 + [CaravanSource(source) for source in up_inner]
    rng = random.Random(seed)
    datapath.process_stream(interleave(sources, WARMUP, rng, MEAN_RUN),
                            final_flush=False)
    datapath.reset_measurement()
    datapath.process_stream(interleave(sources, MEASURE, rng, MEAN_RUN),
                            final_flush=False)
    stats = datapath.combined_stats()
    return (
        datapath.sustainable_throughput_bps(XEON_6554S),
        stats.conversion_yield,
        stats,
    )


def test_fig5b_pxgw_udp(benchmark, report):
    def run():
        px = run_configuration(GatewayConfig())
        hdo = run_configuration(GatewayConfig(header_only_dma=True))
        return {"PX": px, "PX + header-only": hdo}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = report("Figure 5b", "PXGW UDP (PX-caravan) throughput / yield (8 cores)")
    for name, (tput, cy, stats) in results.items():
        table.add(f"{name}: throughput", None, tput, unit="bps",
                  note="paper: slightly below the TCP case")
        table.add(f"{name}: conversion yield", 0.93, round(cy, 3))
    px_tput, px_yield, px_stats = results["PX"]
    hdo_tput, hdo_yield, _ = results["PX + header-only"]

    # Slightly lower peak than the TCP case's 1.09 Tbps, but same order.
    assert 0.8e12 < px_tput < 1.09e12
    # Yield comparable to TCP thanks to delayed merging.
    assert px_yield > 0.90
    # Header-only DMA lifts the UDP peak as well.
    assert hdo_tput > 1.2 * px_tput
    # The datapath really built and opened caravans.
    assert px_stats.caravans_built > 1000
    assert px_stats.caravans_opened > 1000
