"""Extension — where in the b-network should the PXGW sit?

§4 recommends deploying PXGW "as close to a neighboring network as
possible to allow more internal nodes to benefit from the larger MTU."
This experiment quantifies that advice: a fixed download crosses a
b-network with three internal routers, with the gateway placed at each
possible position.  Routers on the host side of the gateway carry
9000 B jumbos (few packets); routers on the border side still carry
legacy 1500 B packets (many packets).

Measured finding: moving the PXGW from the host to the border cuts the
total packet-forwarding work inside the b-network by ~6x — the full
MSS ratio — confirming and quantifying the deployment guidance.
"""

import pytest

from repro.core import GatewayConfig, PXGateway
from repro.net import Topology
from repro.tcpstack import TCPConnection, TCPListener

INTERNAL_ROUTERS = 3
DOWNLOAD_BYTES = 2_000_000


def run_placement(position: int):
    """Gateway after *position* internal routers (3 = at the border).

    The b-network fabric supports 9000 B on every internal link, but
    packets only become large once merged at the gateway — so routers
    on the border side of it still forward legacy-size packets.
    """
    topo = Topology(seed=41)
    host = topo.add_host("host")
    outside = topo.add_host("outside")
    routers = [topo.add_router(f"r{i}") for i in range(INTERNAL_ROUTERS)]
    gateway = PXGateway(topo.sim, "pxgw",
                        config=GatewayConfig(elephant_threshold_packets=2))
    topo.add_node(gateway)
    chain = [host] + routers[:position] + [gateway] + routers[position:] + [outside]
    for index in range(len(chain) - 2):
        topo.link(chain[index], chain[index + 1], mtu=9000, bandwidth_bps=10e9,
                  delay=5e-5)
    topo.link(chain[-2], chain[-1], mtu=1500, bandwidth_bps=10e9, delay=5e-5)
    topo.build_routes()
    gateway.mark_internal(gateway.interfaces[0])

    listener = TCPListener(outside, 80, mss=1460)
    conn = TCPConnection(host, 40000, outside.ip, 80, mss=8960)
    conn.connect()
    topo.run(until=0.5)
    listener.connections[0].send_bulk(DOWNLOAD_BYTES)
    topo.run(until=8.0)
    assert conn.bytes_delivered == DOWNLOAD_BYTES

    return sum(router.forwarded for router in routers)


def test_ext_gateway_placement(benchmark, report):
    results = benchmark.pedantic(
        lambda: {position: run_placement(position)
                 for position in range(INTERNAL_ROUTERS + 1)},
        rounds=1, iterations=1,
    )

    table = report("Extension: PXGW placement",
                   "Internal forwarding work vs gateway position (2 MB download)")
    labels = {0: "at the host (worst)", 1: "1 hop in", 2: "2 hops in",
              3: "at the border (recommended)"}
    for position in range(INTERNAL_ROUTERS + 1):
        table.add(f"gateway {labels[position]}", None, results[position],
                  unit="router-pkts")
    reduction = results[0] / results[INTERNAL_ROUTERS]
    table.add("work reduction host->border placement", None, reduction, unit="x",
              note="MSS ratio predicts ~6x")

    # Monotonic: every hop closer to the border shrinks internal work.
    series = [results[p] for p in range(INTERNAL_ROUTERS + 1)]
    assert series == sorted(series, reverse=True)
    # Border placement approaches the full 6x packet-count reduction.
    assert reduction > 3.5
