"""Extension — the incremental-deployment payoff curve.

The paper's whole pitch is *incremental* upgrade: networks adopt large
MTUs one at a time, and PXGWs keep them compatible with everyone else.
But what does partial adoption buy?  This experiment measures the three
pairwise regimes with full simulations —

* legacy ↔ legacy (baseline),
* b-network → legacy (§5.2's sender-side case: split at the border),
* b-network ↔ b-network over a legacy core (both ends benefit),

— then composes the adoption curve: with a fraction *p* of networks
upgraded and uniform random communication, a flow is b↔b with
probability p², mixed with 2p(1−p), legacy with (1−p)².

Measured findings:

* The payoff is immediate — at 30 % adoption the average flow already
  gains ~1.85×, because mixed pairs (the dominant term early on) get
  the full single-side benefit.  There is no flag-day cliff.
* b↔b is *not* faster than b→legacy for a WAN-limited single flow
  (276 vs 328 Mbps here): the receiving gateway's merge coarsens the
  ACK clock and adds the merge-hold delay, while its real benefit —
  receiver CPU efficiency, Figure 5c — does not show up in a
  loss-limited throughput number.  Deployment guidance: sender-side
  translation carries the WAN win; receiver-side translation carries
  the host-efficiency win.
"""

import pytest

from repro.core import GatewayConfig, PXGateway
from repro.net import Topology
from repro.sim import Netem
from repro.workload import run_tcp_flow

ONE_WAY_DELAY = 0.005
LOSS = 1e-4
DURATION = 12.0
OMIT = 5.0


def pair_throughput(sender_upgraded: bool, receiver_upgraded: bool) -> float:
    """One flow between two stub networks over a legacy WAN core."""
    topo = Topology(seed=13)
    sender = topo.add_host("sender")
    receiver = topo.add_host("receiver")
    core_s = topo.add_router("core-s")
    core_r = topo.add_router("core-r")

    def attach(host, core, upgraded, name):
        if not upgraded:
            topo.link(host, core, mtu=1500, bandwidth_bps=100e9, delay=1e-5,
                      queue_bytes=1 << 30)
            return None
        gateway = PXGateway(topo.sim, name,
                            config=GatewayConfig(elephant_threshold_packets=2))
        topo.add_node(gateway)
        topo.link(host, gateway, mtu=9000, bandwidth_bps=100e9, delay=1e-5,
                  queue_bytes=1 << 30)
        topo.link(gateway, core, mtu=1500, bandwidth_bps=100e9, delay=1e-5,
                  queue_bytes=1 << 30)
        return gateway

    gw_s = attach(sender, core_s, sender_upgraded, "gw-s")
    gw_r = attach(receiver, core_r, receiver_upgraded, "gw-r")
    # The impaired legacy WAN between the two stub networks.
    topo.link(core_s, core_r, mtu=1500, bandwidth_bps=100e9,
              netem=Netem(delay=ONE_WAY_DELAY, loss=LOSS), queue_bytes=1 << 30)
    topo.build_routes()
    for gateway in (gw_s, gw_r):
        if gateway is not None:
            gateway.mark_internal(gateway.interfaces[0])

    result = run_tcp_flow(
        topo, sender, receiver, duration=DURATION, omit=OMIT,
        mss=8960 if sender_upgraded else 1460,
        server_mss=8960 if receiver_upgraded else 1460,
    )
    return result.throughput_bps


def test_ext_incremental_adoption(benchmark, report):
    def experiment():
        legacy = pair_throughput(False, False)
        mixed = pair_throughput(True, False)
        both = pair_throughput(True, True)
        return legacy, mixed, both

    legacy, mixed, both = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = report("Extension: incremental adoption",
                   "Average flow gain vs fraction of networks upgraded")
    table.add("legacy <-> legacy", None, legacy, unit="bps")
    table.add("b-network -> legacy (mixed)", None, mixed, unit="bps",
              note="the §5.2 single-side case")
    table.add("b-network <-> b-network", None, both, unit="bps")
    for adoption in (0.1, 0.3, 0.5, 1.0):
        average = (
            adoption ** 2 * both
            + 2 * adoption * (1 - adoption) * mixed
            + (1 - adoption) ** 2 * legacy
        )
        table.add(f"mean flow gain at {adoption:.0%} adoption", None,
                  average / legacy, unit="x")

    # The curve the paper's pitch depends on: immediate, no flag day.
    assert mixed > 1.5 * legacy
    # b<->b keeps most of the single-side WAN gain (its extra benefit is
    # receiver CPU, invisible to a loss-limited throughput number).
    assert both > 0.6 * mixed
    gain_30 = (0.09 * both + 0.42 * mixed + 0.49 * legacy) / legacy
    assert gain_30 > 1.3
