"""Extension — what latency does delayed merging add?

§4's challenge statement demands "very high throughput and low latency"
from PXGW, yet delayed merging (the technique behind the 93 % yield)
*holds* packets waiting for contiguous successors.  This experiment
measures the per-datagram latency a PXGW adds over a plain router, as a
function of the merge timeout — the yield/latency trade-off knob.

Measured finding: at the paper-scale timeout (500 us) a sparse stream
pays up to the full timeout at the tail; dense streams fill caravans
before the timer and pay almost nothing.  The trade-off only bites
traffic too sparse to merge — which the classifier hairpins anyway.
"""

import struct

import pytest

from repro.analysis import percentile
from repro.core import GatewayConfig, PXGateway, decode_caravan
from repro.net import Topology
from repro.tcpstack import Reno  # noqa: F401 (documentation import)

DATAGRAMS = 400
DATAGRAM_SIZE = 1200


def measure_latencies(middlebox: str, merge_timeout: float = 500e-6,
                      spacing: float = 150e-6):
    """Per-datagram one-way latency through a router or a PXGW."""
    topo = Topology(seed=3)
    receiver = topo.add_host("receiver")
    sender = topo.add_host("sender")
    if middlebox == "router":
        box = topo.add_router("box")
    else:
        box = PXGateway(topo.sim, "box",
                        config=GatewayConfig(merge_timeout=merge_timeout,
                                             elephant_threshold_packets=2))
        topo.add_node(box)
    topo.link(receiver, box, mtu=9000, bandwidth_bps=10e9, delay=10e-6)
    topo.link(box, sender, mtu=1500, bandwidth_bps=10e9, delay=10e-6)
    topo.build_routes()
    if middlebox != "router":
        box.mark_internal(box.interfaces[0])

    latencies = []

    def on_packet(packet, host):
        for datagram in decode_caravan(packet):
            sent_at, = struct.unpack_from("!d", datagram.payload)
            latencies.append(topo.sim.now - sent_at)

    receiver.on_udp(4000, on_packet)

    def send(index):
        payload = struct.pack("!d", topo.sim.now) + b"\0" * (DATAGRAM_SIZE - 8)
        sender.send_udp(receiver.ip, 4000, 4000, payload)

    for index in range(DATAGRAMS):
        topo.sim.schedule(index * spacing, send, index)
    topo.run(until=DATAGRAMS * spacing + 1.0)
    assert len(latencies) == DATAGRAMS
    return latencies


def test_ext_merge_latency(benchmark, report):
    def experiment():
        results = {"plain router": measure_latencies("router")}
        for timeout in (100e-6, 500e-6, 2e-3):
            results[f"PXGW timeout {timeout * 1e6:.0f}us"] = measure_latencies(
                "pxgw", merge_timeout=timeout)
        # A dense stream (back-to-back arrivals) fills caravans quickly.
        results["PXGW 500us, dense stream"] = measure_latencies(
            "pxgw", merge_timeout=500e-6, spacing=2e-6)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = report("Extension: merge latency",
                   "Per-datagram one-way latency added by delayed merging")
    for name, latencies in results.items():
        table.add(f"{name}: p50", None, round(percentile(latencies, 50) * 1e6, 1),
                  unit="us")
        table.add(f"{name}: p99", None, round(percentile(latencies, 99) * 1e6, 1),
                  unit="us")

    base_p99 = percentile(results["plain router"], 99)
    sparse_500 = percentile(results["PXGW timeout 500us"], 99)
    dense_500 = percentile(results["PXGW 500us, dense stream"], 99)
    fast_100 = percentile(results["PXGW timeout 100us"], 99)
    slow_2000 = percentile(results["PXGW timeout 2000us"], 99)

    # The added tail latency tracks the merge timeout on sparse streams
    # (capped by the caravan fill time once the timeout exceeds it)…
    assert base_p99 < 100e-6
    assert fast_100 < sparse_500 <= slow_2000
    assert sparse_500 < base_p99 + 700e-6
    # …and nearly vanishes when traffic is dense enough to fill caravans.
    assert dense_500 < base_p99 + 150e-6
