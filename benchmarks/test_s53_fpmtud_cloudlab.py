"""§5.3 — F-PMTUD vs Scamper-style PLPMTUD on CloudLab-like paths.

Paper: across all pairwise paths between 6 CloudLab nodes, F-PMTUD and
Scamper (UDP PLPMTUD) produce identical PMTU values, but F-PMTUD
finishes in one RTT while Scamper needs multiple probe/timeout rounds —
up to 368x faster (Utah <-> Massachusetts).

Here: 6 sites with WAN RTTs (10–70 ms) and mixed path MTUs; each of the
15 pairwise paths runs F-PMTUD, PLPMTUD, and classical PMTUD over the
same simulated topology.  PMTU agreement is modulo IPv4 fragment
alignment (F-PMTUD observes 8-byte-aligned fragment sizes).
"""

import itertools
import random

import pytest

from repro.net import Topology
from repro.pmtud import (
    ClassicalPmtud,
    FPmtudDaemon,
    FPmtudProber,
    Plpmtud,
    ProbeEchoDaemon,
)

SITES = ["utah", "wisconsin", "clemson", "apt", "mass", "emulab"]
#: Plausible CloudLab inter-site one-way delays (seconds).
SITE_DELAYS = {"utah": 0.004, "wisconsin": 0.012, "clemson": 0.016,
               "apt": 0.005, "mass": 0.018, "emulab": 0.004}
MTU_CHOICES = [1500, 1500, 9000, 4000, 2000, 1200]


def build_pair_path(site_a, site_b, mtus, seed):
    """A 3-hop WAN path between two sites with the given link MTUs."""
    topo = Topology(seed=seed)
    a = topo.add_host(site_a)
    b = topo.add_host(site_b)
    routers = [topo.add_router(f"r{i}") for i in range(3)]
    chain = [a] + routers + [b]
    delay = (SITE_DELAYS[site_a] + SITE_DELAYS[site_b]) / len(chain)
    for index in range(len(chain) - 1):
        topo.link(chain[index], chain[index + 1], mtu=mtus[index], delay=delay)
    topo.build_routes()
    return topo, a, b


def discover_pair(site_a, site_b, rng):
    """Run each method on its own copy of the same path (one probing
    client at a time, as the paper's measurements do)."""
    mtus = [9000] + [rng.choice(MTU_CHOICES) for _ in range(2)] + [9000]
    seed = rng.randrange(1 << 30)
    true_pmtu = min(mtus)

    topo, a, b = build_pair_path(site_a, site_b, mtus, seed)
    FPmtudDaemon(b)
    fp_results = []
    FPmtudProber(a).probe(b.ip, 9000, fp_results.append)
    topo.run(until=60.0)

    topo, a, b = build_pair_path(site_a, site_b, mtus, seed)
    ProbeEchoDaemon(b)
    plp_results = []
    Plpmtud(a, probe_timeout=1.0).discover(b.ip, 9000, plp_results.append)
    topo.run(until=600.0)

    topo, a, b = build_pair_path(site_a, site_b, mtus, seed)
    ProbeEchoDaemon(b)
    classic_results = []
    ClassicalPmtud(a).discover(b.ip, 9000, classic_results.append)
    topo.run(until=600.0)

    assert fp_results and plp_results and classic_results
    return true_pmtu, fp_results[0], plp_results[0], classic_results[0]


def test_s53_fpmtud_vs_plpmtud(benchmark, report):
    def run():
        rng = random.Random(42)
        outcomes = []
        for site_a, site_b in itertools.combinations(SITES, 2):
            outcomes.append((site_a, site_b) + discover_pair(site_a, site_b, rng))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    speedups = []
    for site_a, site_b, true_pmtu, fp, plp, classic in outcomes:
        # Identical PMTU on every path (modulo 8 B fragment alignment).
        assert true_pmtu - 8 <= fp.pmtu <= true_pmtu
        assert true_pmtu - 8 <= plp.pmtu <= true_pmtu
        assert abs(fp.pmtu - plp.pmtu) <= 8
        # Classical PMTUD also agrees here (no blackholes on these paths).
        assert classic.pmtu == true_pmtu
        speedups.append(plp.elapsed / fp.elapsed)

    table = report("§5.3 CloudLab", "F-PMTUD vs PLPMTUD on 15 pairwise paths")
    table.add("paths with identical PMTU", 15, len(outcomes), unit="paths")
    table.add("max F-PMTUD speedup over PLPMTUD", 368.0, max(speedups), unit="x",
              note="paper: Utah<->Mass")
    table.add("median speedup", None, sorted(speedups)[len(speedups) // 2], unit="x")
    table.add("min speedup", None, min(speedups), unit="x")

    # F-PMTUD is dramatically faster wherever the search needs timeouts.
    assert max(speedups) > 100
    assert all(speedup >= 1.0 for speedup in speedups)
