"""§5.2 — Sender in a b-network: TCP throughput gain over the WAN.

Paper: a single TCP flow from a sender inside the b-network (9 KB
iMTU), crossing PXGW onto a legacy WAN (10 ms E2E delay, 0.01 % loss,
1500 B eMTU), gains 2.5x over an end-to-end legacy configuration — the
sender's congestion window grows one (9 KB) MSS per RTT, 6x faster.

Here: the full event simulation — sender, PXGW (MSS clamp raising the
SYN-ACK's MSS, split engine at egress), netem WAN, legacy receiver.
The ~2.5x (not 6x) emerges because each jumbo segment becomes ~6 wire
packets whose independent loss multiplies the per-segment loss rate:
Mathis gives MSSx6.18 / sqrt(px6.18) = 2.5x.
"""

import pytest

from repro.core import GatewayConfig, PXGateway
from repro.net import Topology
from repro.sim import Netem
from repro.workload import run_tcp_flow

ONE_WAY_DELAY = 0.005
LOSS = 1e-4
DURATION = 25.0
OMIT = 8.0  # discard the slow-start transient, like iPerf --omit


def sender_in_bnetwork_throughput() -> float:
    topo = Topology(seed=7)
    sender = topo.add_host("sender")
    receiver = topo.add_host("receiver")
    gateway = PXGateway(topo.sim, "pxgw",
                        config=GatewayConfig(elephant_threshold_packets=2))
    topo.add_node(gateway)
    topo.link(sender, gateway, mtu=9000, bandwidth_bps=100e9, delay=1e-5,
              queue_bytes=1 << 30)
    topo.link(gateway, receiver, mtu=1500, bandwidth_bps=100e9,
              netem=Netem(delay=ONE_WAY_DELAY, loss=LOSS), queue_bytes=1 << 30)
    topo.build_routes()
    gateway.mark_internal(gateway.interfaces[0])
    result = run_tcp_flow(topo, sender, receiver, duration=DURATION, omit=OMIT,
                          mss=8960, server_mss=1460)
    assert result.client_mss == 8960  # PXGW raised the SYN-ACK MSS
    return result.throughput_bps


def legacy_throughput() -> float:
    topo = Topology(seed=7)
    sender = topo.add_host("sender")
    receiver = topo.add_host("receiver")
    router = topo.add_router("router")
    topo.link(sender, router, mtu=1500, bandwidth_bps=100e9, delay=1e-5,
              queue_bytes=1 << 30)
    topo.link(router, receiver, mtu=1500, bandwidth_bps=100e9,
              netem=Netem(delay=ONE_WAY_DELAY, loss=LOSS), queue_bytes=1 << 30)
    topo.build_routes()
    result = run_tcp_flow(topo, sender, receiver, duration=DURATION, omit=OMIT,
                          mss=1460, server_mss=1460)
    return result.throughput_bps


def test_s52_sender_side_upgrade(benchmark, report):
    def run():
        return sender_in_bnetwork_throughput(), legacy_throughput()

    upgraded, legacy = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = upgraded / legacy

    table = report("§5.2 sender", "Sender-side-only MTU upgrade over the WAN")
    table.add("legacy 1500 B end-to-end", None, legacy, unit="bps")
    table.add("9 KB iMTU sender via PXGW", None, upgraded, unit="bps")
    table.add("speedup", 2.5, ratio, unit="x")

    # Paper: 2.5x from upgrading only the sender network.
    assert 1.8 < ratio < 3.5
