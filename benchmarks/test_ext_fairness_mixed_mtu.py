"""Extension — fairness in a mix of small- and large-MTU senders.

The paper leaves this as an open question (§6): *"how do we ensure fair
bandwidth allocation in the mix of small and large-MTU senders?"*  This
experiment quantifies the concern on a shared bottleneck: AIMD's
additive increase is one MSS per RTT, so 9000 B senders reclaim
bandwidth ~6x faster after every loss and take a structurally larger
share.

Measured finding (no paper value exists): the bias is real but *much
smaller than the Mathis MSS-ratio bound* — a shared drop-tail queue
synchronizes losses across flows, so both groups back off together and
the large-MSS advantage compresses from the theoretical 6.2x to well
under 2x.  That is a somewhat reassuring data point for the paper's
congestion concern.
"""

import pytest

from repro.analysis.fairness import jain_index, mss_bias_ratio
from repro.net import Topology
from repro.sim import Netem
from repro.tcpstack import TCPConnection, TCPListener

SMALL_FLOWS = 3
LARGE_FLOWS = 3
BOTTLENECK_BPS = 400e6
DURATION = 15.0


def run_mixed_bottleneck():
    topo = Topology(seed=21)
    left = topo.add_router("left")
    right = topo.add_router("right")
    # The shared bottleneck: jumbo-capable but slow, with a real queue.
    topo.link(left, right, mtu=9000, bandwidth_bps=BOTTLENECK_BPS,
              delay=5e-3, queue_bytes=300_000)

    senders, receivers, connections, listeners = [], [], [], []
    flows = [("small", 1448, 1500)] * SMALL_FLOWS + [("large", 8948, 9000)] * LARGE_FLOWS
    for index, (group, mss, mtu) in enumerate(flows):
        sender = topo.add_host(f"s{index}")
        receiver = topo.add_host(f"r{index}")
        topo.link(sender, left, mtu=mtu, bandwidth_bps=10e9, queue_bytes=1 << 24)
        topo.link(right, receiver, mtu=mtu, bandwidth_bps=10e9, queue_bytes=1 << 24)
        senders.append(sender)
        receivers.append(receiver)
    topo.build_routes()

    for index, (group, mss, _mtu) in enumerate(flows):
        listener = TCPListener(receivers[index], 5000 + index, mss=mss)
        conn = TCPConnection(senders[index], 40000 + index,
                             receivers[index].ip, 5000 + index, mss=mss)
        conn.connect()
        connections.append(conn)
        listeners.append(listener)
    topo.run(until=1.0)
    for conn in connections:
        conn.send_bulk(1 << 44)
    start = topo.sim.now
    topo.run(until=start + DURATION)

    throughputs = {}
    for index, (group, _mss, _mtu) in enumerate(flows):
        delivered = listeners[index].connections[0].bytes_delivered
        throughputs.setdefault(group, []).append(delivered * 8 / DURATION)
    return throughputs


def test_ext_mixed_mtu_fairness(benchmark, report):
    throughputs = benchmark.pedantic(run_mixed_bottleneck, rounds=1, iterations=1)

    all_flows = throughputs["small"] + throughputs["large"]
    fairness = jain_index(all_flows)
    bias = mss_bias_ratio(throughputs)

    table = report("Extension: mixed-MTU fairness",
                   "6 flows sharing a 400 Mbps bottleneck (paper's open question)")
    table.add("mean small-MSS flow", None, sum(throughputs["small"]) / SMALL_FLOWS,
              unit="bps")
    table.add("mean large-MSS flow", None, sum(throughputs["large"]) / LARGE_FLOWS,
              unit="bps")
    table.add("large/small per-flow bias", None, bias, unit="x",
              note="Mathis predicts up to MSS ratio 6.2x")
    table.add("Jain fairness index", None, fairness,
              note="1.0 = fair; 0.5 ≈ half the flows starved")

    # The structural unfairness the paper worries about is real and in
    # the predicted direction, but drop-tail loss synchronization keeps
    # it far below the Mathis MSS-ratio bound.
    assert 1.3 < bias < 6.2
    assert fairness < 0.97
    # But nobody fully starves, and the link is well utilized.
    assert all(tput > 1e6 for tput in all_flows)
    assert sum(all_flows) > 0.5 * BOTTLENECK_BPS
