"""Figure 1d — Impact of MTU size for a WAN connection (single flow).

Paper: over a WAN with 10 ms end-to-end delay and 0.01 % loss, a
9000 B MTU outperforms 1500 B *with G/LRO* by 5.4x: the win is in
congestion-window arithmetic (cwnd grows one MSS per RTT; steady state
is Mathis's MSS/(RTT*sqrt(p))), which no receive offload can recover.

Here: the event-driven TCP stack runs over a netem-impaired simulated
path; the Mathis closed form is printed alongside as a sanity check.
Receiver offloads are irrelevant to a cwnd-limited flow, so the 1500 B
number *is* the "1500 B + G/LRO" bar.
"""

import pytest

from repro.net import Topology
from repro.sim import Netem
from repro.tcpstack import mathis_throughput_bps
from repro.workload import run_tcp_flow

ONE_WAY_DELAY = 0.005  # 10 ms end-to-end
LOSS = 1e-4
DURATION = 12.0


def wan_throughput(mtu: int, mss: int, seed: int = 0) -> float:
    topo = Topology(seed=seed)
    client = topo.add_host("client")
    server = topo.add_host("server")
    router = topo.add_router("router")
    topo.link(client, router, mtu=mtu, bandwidth_bps=100e9, delay=1e-5,
              queue_bytes=1 << 30)
    topo.link(router, server, mtu=mtu, bandwidth_bps=100e9,
              netem=Netem(delay=ONE_WAY_DELAY, loss=LOSS), queue_bytes=1 << 30)
    topo.build_routes()
    result = run_tcp_flow(topo, client, server, duration=DURATION, mss=mss)
    return result.throughput_bps


def test_fig1d_wan_single_flow(benchmark, report):
    def run():
        return {
            1500: wan_throughput(1500, 1448),
            9000: wan_throughput(9000, 8948),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = results[9000] / results[1500]

    rtt = 2 * ONE_WAY_DELAY
    table = report("Figure 1d", "WAN single flow (10 ms E2E, 0.01 % loss)")
    table.add("1500 B (= with G/LRO; cwnd-limited)", None, results[1500], unit="bps")
    table.add("9000 B", None, results[9000], unit="bps")
    table.add("Mathis model 1500 B", None, mathis_throughput_bps(1448, rtt, LOSS),
              unit="bps", note="closed form")
    table.add("Mathis model 9000 B", None, mathis_throughput_bps(8948, rtt, LOSS),
              unit="bps", note="closed form")
    table.add("speedup 9000 B vs 1500 B+G/LRO", 5.4, ratio, unit="x")

    # Paper: 5.4x; Mathis predicts MSS ratio = 6.18x; accept the band.
    assert 4.0 < ratio < 7.5
    # The simulated flows land within 2x of the closed-form model.
    assert results[1500] == pytest.approx(
        mathis_throughput_bps(1448, rtt, LOSS), rel=1.0
    )
