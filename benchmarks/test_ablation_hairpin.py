"""Ablation — small-flow steering via NIC hairpin (§3, §4.1).

Mice are typically unmergeable: they rarely have a contiguous successor
waiting, yet they consume merge-engine cycles and evict elephants'
contexts.  PXGW classifies flows online and steers mice through the NIC
hairpin.  This ablation runs an elephant+mice mix with steering on and
off and reports the throughput and yield cost of letting mice pollute
the merge engine.
"""

import random

import pytest

from repro.core import Bound, GatewayConfig, GatewayDatapath
from repro.cpu import XEON_6554S
from repro.workload import interleave, make_tcp_sources

WARMUP = 15_000
MEASURE = 60_000
ELEPHANTS = 100
MICE = 2000


class MiceMix:
    """Interleaves elephants with a churn of short-lived mouse flows.

    Real mice are *new* flows (a DNS exchange, a small HTTP object), so
    each mouse burst here comes from a fresh 5-tuple: they never build
    enough history to be promoted, exactly as in live traffic.
    """

    def __init__(self, seed: int):
        self.elephants = make_tcp_sources(ELEPHANTS, 1448, tag=Bound.INBOUND)
        self.rng = random.Random(seed)
        self._next_mouse_port = 1024

    def _fresh_mouse(self):
        from repro.workload import TcpStreamSource

        self._next_mouse_port += 1
        if self._next_mouse_port > 60000:
            self._next_mouse_port = 1024
        return TcpStreamSource(
            src=f"198.18.{self.rng.randrange(256)}.{self.rng.randrange(1, 255)}",
            dst="10.1.0.1",
            src_port=self._next_mouse_port,
            dst_port=443,
            payload_size=400,
        )

    def stream(self, total: int):
        emitted = 0
        while emitted < total:
            if self.rng.random() < 0.9:
                mouse = self._fresh_mouse()
                for _ in range(self.rng.randint(1, 2)):
                    yield mouse.next_packet(), Bound.INBOUND
                    emitted += 1
                    if emitted >= total:
                        break
                continue
            elephant = self.elephants[self.rng.randrange(ELEPHANTS)]
            for _ in range(24):
                yield elephant.next_packet(), Bound.INBOUND
                emitted += 1
                if emitted >= total:
                    break


def run(hairpin: bool, contexts: int = 64, seed: int = 5):
    # A deliberately small context budget makes eviction pressure real.
    config = GatewayConfig(hairpin_small_flows=hairpin,
                           merge_contexts_per_worker=contexts)
    datapath = GatewayDatapath(config)
    mix = MiceMix(seed)
    datapath.process_stream(mix.stream(WARMUP), final_flush=False)
    datapath.reset_measurement()
    datapath.process_stream(mix.stream(MEASURE), final_flush=False)
    stats = datapath.combined_stats()
    return (
        datapath.sustainable_throughput_bps(XEON_6554S),
        stats.conversion_yield_bytes,
        stats.hairpinned,
        stats.conversion_yield,
    )


def test_ablation_hairpin_steering(benchmark, report):
    results = benchmark.pedantic(
        lambda: {"steering on": run(True), "steering off": run(False)},
        rounds=1, iterations=1,
    )

    table = report("Ablation: hairpin steering", "Mice mixed with elephants")
    for name, (tput, cy_bytes, hairpinned, cy_pkts) in results.items():
        table.add(f"{name}: throughput", None, tput, unit="bps")
        table.add(f"{name}: byte-weighted yield", None, round(cy_bytes, 3))
        table.add(f"{name}: hairpinned packets", None, hairpinned, unit="pkts")

    on_tput, on_cy, on_hairpinned, _on_cyp = results["steering on"]
    off_tput, off_cy, off_hairpinned, _off_cyp = results["steering off"]
    assert on_hairpinned > 1000 and off_hairpinned == 0
    # Steering preserves elephant merging under mice interference.
    assert on_cy > off_cy
    assert on_tput >= off_tput
