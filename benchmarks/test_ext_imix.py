"""Extension — PXGW under realistic (IMIX) traffic instead of iPerf bulk.

The paper's 94 % conversion yield is measured with 800 iPerf bulk flows
— every payload a full MSS.  A border gateway's real diet is the
Internet mix (7:4:1 of 40/576/1500 B packets).  This experiment feeds a
simple-IMIX population through PXGW and reports what large-MTU
conversion actually delivers on such traffic.

Measured finding: packet-weighted yield collapses (most packets are
tiny and unmergeable — they hairpin past the merge engine), but the
*byte*-weighted yield stays high because the bytes live in the
full-size packets; forwarding throughput stays in the Tbps class.
"""

import random

import pytest

from repro.core import Bound, GatewayConfig, GatewayDatapath
from repro.cpu import XEON_6554S
from repro.workload import interleave, make_tcp_sources
from repro.workload.imix import ImixProfile, imix_tcp_sources

WARMUP = 20_000
MEASURE = 60_000


def run(sources, seed=23):
    datapath = GatewayDatapath(GatewayConfig())
    rng = random.Random(seed)
    datapath.process_stream(interleave(sources, WARMUP, rng, 12.0),
                            final_flush=False)
    datapath.reset_measurement()
    datapath.process_stream(interleave(sources, MEASURE, rng, 12.0),
                            final_flush=False)
    stats = datapath.combined_stats()
    return (
        datapath.sustainable_throughput_bps(XEON_6554S),
        stats.conversion_yield,
        stats.conversion_yield_bytes,
        stats.hairpinned,
    )


def test_ext_imix_traffic(benchmark, report):
    def experiment():
        rng = random.Random(7)
        imix = imix_tcp_sources(800, rng, tag=Bound.INBOUND)
        bulk = make_tcp_sources(800, 1448, tag=Bound.INBOUND)
        return {"imix": run(imix), "iperf bulk": run(bulk)}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = report("Extension: IMIX traffic",
                   "PXGW fed the Internet mix vs iPerf bulk (downlink)")
    for name, (tput, cy, cy_bytes, hairpinned) in results.items():
        table.add(f"{name}: throughput", None, tput, unit="bps")
        table.add(f"{name}: packet-weighted yield", None, round(cy, 3))
        table.add(f"{name}: byte-weighted yield", None, round(cy_bytes, 3))
        table.add(f"{name}: hairpinned packets", None, hairpinned, unit="pkts")

    imix_tput, imix_cy, imix_cy_bytes, imix_hairpin = results["imix"]
    bulk_tput, bulk_cy, _bulk_cyb, _ = results["iperf bulk"]

    profile = ImixProfile()
    assert profile.mean_size == pytest.approx((40 * 7 + 576 * 4 + 1500) / 12)

    # Bulk traffic converts mostly; IMIX far less per packet.
    assert bulk_cy > 0.8
    assert imix_cy < bulk_cy - 0.15
    # But the *bytes* still overwhelmingly travel in full-iMTU packets.
    assert imix_cy_bytes > 0.8
    # Forwarding rate drops (tiny packets burn per-packet cycles) but
    # stays within the same order of magnitude.
    assert imix_tput > 0.2 * bulk_tput
