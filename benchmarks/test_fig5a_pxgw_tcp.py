"""Figure 5a — PXGW TCP throughput and conversion yield (800 flows, 8 cores).

Paper:

    baseline (DPDK GRO library):  167 Gbps,  76 % conversion yield
    PX (all techniques):         1.09 Tbps,  93 %
    PX + header-only DMA:        1.45 Tbps,  94 %

Here: 800 bidirectional TCP flows (downlink eMTU segments to merge,
uplink jumbo segments to split, 6:1 packet ratio) stream through the
8-worker :class:`GatewayDatapath`; a warm-up phase fills flow tables
and merge contexts before the measured window, and throughput comes
from cycle/memory accounting on the testbed CPU spec.
"""

import random

import pytest

from repro.core import Bound, GatewayConfig, GatewayDatapath
from repro.cpu import XEON_6554S
from repro.workload import interleave, make_tcp_sources

WARMUP = 40_000
MEASURE = 120_000
MEAN_RUN = 24.0

PAPER = {
    "baseline": (167e9, 0.76),
    "PX": (1.09e12, 0.93),
    "PX + header-only": (1.45e12, 0.94),
}


def run_configuration(config: GatewayConfig, seed: int = 1):
    datapath = GatewayDatapath(config)
    down = make_tcp_sources(400, 1448, tag=Bound.INBOUND)
    up = make_tcp_sources(400, 8948, tag=Bound.OUTBOUND, base_port=30000,
                          client_net="10.1.0", server_net="198.51.100")
    sources = down * 6 + up  # bidirectional byte parity: 6 small per jumbo
    rng = random.Random(seed)
    datapath.process_stream(interleave(sources, WARMUP, rng, MEAN_RUN),
                            final_flush=False)
    datapath.reset_measurement()
    datapath.process_stream(interleave(sources, MEASURE, rng, MEAN_RUN),
                            final_flush=False)
    return (
        datapath.sustainable_throughput_bps(XEON_6554S),
        datapath.combined_stats().conversion_yield,
    )


CONFIGS = {
    "baseline": GatewayConfig(baseline_gro=True, delayed_merge=False,
                              hairpin_small_flows=False),
    "PX": GatewayConfig(),
    "PX + header-only": GatewayConfig(header_only_dma=True),
}


def test_fig5a_pxgw_tcp(benchmark, report):
    results = benchmark.pedantic(
        lambda: {name: run_configuration(config) for name, config in CONFIGS.items()},
        rounds=1, iterations=1,
    )

    table = report("Figure 5a", "PXGW TCP throughput / conversion yield (8 cores)")
    for name, (paper_tput, paper_yield) in PAPER.items():
        tput, cy = results[name]
        table.add(f"{name}: throughput", paper_tput, tput, unit="bps")
        table.add(f"{name}: conversion yield", paper_yield, round(cy, 3))

    # Throughput anchors within 15 %.
    for name, (paper_tput, _) in PAPER.items():
        assert results[name][0] == pytest.approx(paper_tput, rel=0.15), name
    # Yield: PX converts the vast majority of packets; baseline does not.
    assert results["PX"][1] > 0.90
    assert results["PX + header-only"][1] > 0.90
    assert 0.60 < results["baseline"][1] < 0.85
    # Ordering claims.
    assert results["PX"][0] > 5 * results["baseline"][0]
    assert results["PX + header-only"][0] > 1.2 * results["PX"][0]
