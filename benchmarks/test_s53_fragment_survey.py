"""§5.3 — Fragmented-packet delivery across the Internet.

Paper: fragmented HTTP requests were answered by 99.98 % of 389,428
live servers (59 failures; 15 of them last-hop AS fragment filtering),
versus ~51 % success for ICMP-dependent classical PMTUD as of 2018.

Here: the population is drawn with the measured pathology rates
(network access is unavailable), and the *mechanism* of each failure
class is validated packet-by-packet on sampled simulated paths using
the real router filtering / blackhole code.
"""

import pytest

from repro.pmtud import FragmentSurvey, SurveyRates, probe_path_with_fragments


def test_s53_fragment_survey(benchmark, report):
    def run():
        survey = FragmentSurvey()
        result = survey.run(SurveyRates.PAPER_POPULATION)
        # Mechanism spot-checks with real packets through real routers.
        clean_path_ok = probe_path_with_fragments(filtering_last_hop=False)
        filtered_path_ok = probe_path_with_fragments(filtering_last_hop=True)
        return result, clean_path_ok, filtered_path_ok

    result, clean_path_ok, filtered_path_ok = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    table = report("§5.3 survey", "Fragment delivery across 389,428 server paths")
    table.add("fragment delivery success rate", 0.9998,
              round(result.fragment_success_rate, 6))
    table.add("failing servers", 59,
              result.filtered_last_hop + result.unresponsive, unit="servers")
    table.add("last-hop AS fragment filters", 15, result.filtered_last_hop,
              unit="servers")
    table.add("ICMP PMTUD success rate (2018 study)", 0.51,
              round(result.icmp_success_rate, 4))

    assert result.fragment_success_rate > 0.9995
    assert 30 <= result.filtered_last_hop + result.unresponsive <= 90
    assert 0.46 < result.icmp_success_rate < 0.56
    # Packet-level mechanism: fragments pass clean paths, die at filters.
    assert clean_path_ok and not filtered_path_ok
