"""Figure 1c — Impact of concurrent flows on G/LRO effectiveness.

Paper: interleaved packets from concurrent flows shrink aggregation
opportunities; at just 4 flows the aggregate G/LRO throughput drops 31 %
at 1500 B MTU, but only ~7 % at 9000 B (each packet is already large).

Here: per-packet interleaving across flows (the worst case a switch
produces at equal flow rates) through the LRO/GRO receiver model; the
degradation emerges from merge-context mechanics, not from a formula.
"""

import random

import pytest

from repro.cpu import XEON_5512U
from repro.nic import ReceiverConfig, ReceiverModel
from repro.workload import interleave, make_tcp_sources

FLOW_COUNTS = [1, 2, 4, 8]
PACKETS = 25_000
POLL_BATCH = 40


def aggregate_throughput(payload: int, flows: int) -> float:
    sources = make_tcp_sources(flows, payload)
    model = ReceiverModel(ReceiverConfig(lro=True, gro=True, poll_batch=POLL_BATCH))
    arrivals = (p for p, _ in
                interleave(sources, PACKETS, random.Random(13), mean_run=1.0))
    model.process(arrivals)
    return model.account.sustainable_goodput_bps(XEON_5512U, cores=1)


def test_fig1c_concurrency_sweep(benchmark, report):
    def sweep():
        return {
            (payload, flows): aggregate_throughput(payload, flows)
            for payload in (1448, 8948)
            for flows in FLOW_COUNTS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = report("Figure 1c", "G/LRO aggregate RX throughput vs concurrent flows")
    drops = {}
    for payload, label in ((1448, "1500 B"), (8948, "9000 B")):
        base = results[(payload, 1)]
        for flows in FLOW_COUNTS:
            table.add(f"{label}, {flows} flows", None, results[(payload, flows)],
                      unit="bps")
        drops[payload] = 1 - results[(payload, 4)] / base
    table.add("1500 B drop at 4 flows", 0.31, drops[1448], unit="frac")
    table.add("9000 B drop at 4 flows", 0.07, drops[8948], unit="frac")

    # Paper: -31 % at 4 flows for 1500 B; much smaller for 9000 B.
    assert 0.2 < drops[1448] < 0.45
    assert drops[8948] < 0.12
    assert drops[1448] > 3 * drops[8948]
    # Degradation is monotonic in flow count for the small MTU.
    series_1500 = [results[(1448, flows)] for flows in FLOW_COUNTS]
    assert series_1500 == sorted(series_1500, reverse=True)
