"""Extension — does the sender-side MTU gain survive bursty WAN loss?

§5.2's 2.5x sender gain was measured under independent (netem) loss.
Real WAN losses cluster; a burst wipes out several consecutive wire
packets, and a split jumbo's 6 wire packets travel back to back, so a
single burst often costs only *one* jumbo retransmission instead of six
independent loss events.  This experiment reruns the §5.2 setup over a
Gilbert–Elliott channel with the same stationary loss rate as the
paper's 0.01 %.

Measured finding: the jumbo sender's advantage *persists* under bursty
loss — correlated drops do not erase the MSS-proportional window ramp.
"""

import pytest

from repro.core import GatewayConfig, PXGateway
from repro.net import Topology
from repro.sim import GilbertElliott, Netem
from repro.workload import run_tcp_flow

ONE_WAY_DELAY = 0.005
DURATION = 20.0
OMIT = 6.0

#: Stationary loss ~1e-4 like the paper: pi_bad = 4e-5/(4e-5+0.2) ≈ 2e-4,
#: loss = 0.5 * 2e-4 = 1e-4.
def bursty_channel():
    return GilbertElliott(p_good_to_bad=4e-5, p_bad_to_good=0.2,
                          loss_good=0.0, loss_bad=0.5)


def upgraded_throughput():
    topo = Topology(seed=17)
    sender = topo.add_host("sender")
    receiver = topo.add_host("receiver")
    gateway = PXGateway(topo.sim, "pxgw",
                        config=GatewayConfig(elephant_threshold_packets=2))
    topo.add_node(gateway)
    topo.link(sender, gateway, mtu=9000, bandwidth_bps=100e9, delay=1e-5,
              queue_bytes=1 << 30)
    topo.link(gateway, receiver, mtu=1500, bandwidth_bps=100e9,
              netem=Netem(delay=ONE_WAY_DELAY, burst_loss=bursty_channel()),
              queue_bytes=1 << 30)
    topo.build_routes()
    gateway.mark_internal(gateway.interfaces[0])
    result = run_tcp_flow(topo, sender, receiver, duration=DURATION, omit=OMIT,
                          mss=8960, server_mss=1460)
    return result.throughput_bps


def legacy_throughput():
    topo = Topology(seed=17)
    sender = topo.add_host("sender")
    receiver = topo.add_host("receiver")
    router = topo.add_router("router")
    topo.link(sender, router, mtu=1500, bandwidth_bps=100e9, delay=1e-5,
              queue_bytes=1 << 30)
    topo.link(router, receiver, mtu=1500, bandwidth_bps=100e9,
              netem=Netem(delay=ONE_WAY_DELAY, burst_loss=bursty_channel()),
              queue_bytes=1 << 30)
    topo.build_routes()
    result = run_tcp_flow(topo, sender, receiver, duration=DURATION, omit=OMIT,
                          mss=1460, server_mss=1460)
    return result.throughput_bps


def test_ext_bursty_wan_sender_gain(benchmark, report):
    def run():
        return upgraded_throughput(), legacy_throughput()

    upgraded, legacy = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = upgraded / legacy

    table = report("Extension: bursty WAN",
                   "§5.2 sender gain under Gilbert-Elliott loss (same mean rate)")
    table.add("legacy 1500 B end-to-end", None, legacy, unit="bps")
    table.add("9 KB iMTU sender via PXGW", None, upgraded, unit="bps")
    table.add("speedup under bursty loss", None, ratio, unit="x",
              note="§5.2 i.i.d.-loss case measured ~2.9x")

    # The jumbo sender still wins clearly under correlated loss.
    assert ratio > 1.8
    assert upgraded > 50e6
