"""Ablation — MSS-clamp intervention during the handshake (§4.1).

Without the gateway rewriting the SYN-ACK's MSS option, an inside
sender negotiates down to the outside peer's eMTU-derived MSS and never
emits jumbo segments — the b-network's TX-side benefit disappears
entirely, no matter how good the merge engine is.
"""

import pytest

from repro.core import GatewayConfig, PXGateway
from repro.net import Topology
from repro.tcpstack import TCPConnection, TCPListener


def run(mss_clamp: bool):
    topo = Topology(seed=3)
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    config = GatewayConfig(mss_clamp=mss_clamp, elephant_threshold_packets=2)
    gateway = PXGateway(topo.sim, "pxgw", config=config)
    topo.add_node(gateway)
    topo.link(inside, gateway, mtu=9000, bandwidth_bps=10e9, delay=50e-6)
    topo.link(gateway, outside, mtu=1500, bandwidth_bps=10e9, delay=50e-6)
    topo.build_routes()
    gateway.mark_internal(gateway.interfaces[0])

    listener = TCPListener(outside, 80, mss=1460)
    conn = TCPConnection(inside, 40000, outside.ip, 80, mss=8960)
    conn.connect()
    topo.run(until=0.5)
    conn.send_bulk(3_000_000)
    topo.run(until=4.0)

    return {
        "negotiated_mss": conn.send_mss,
        "bytes_delivered": listener.connections[0].bytes_delivered,
        "inside_tx_packets": inside.interfaces[0].tx_packets,
        "split_segments": gateway.stats.split_segments,
    }


def test_ablation_mss_clamp(benchmark, report):
    results = benchmark.pedantic(
        lambda: {"clamp on": run(True), "clamp off": run(False)},
        rounds=1, iterations=1,
    )

    table = report("Ablation: MSS clamp", "Inside sender's negotiated MSS and TX packets")
    for name, data in results.items():
        table.add(f"{name}: negotiated MSS", None, data["negotiated_mss"], unit="B")
        table.add(f"{name}: inside TX packets", None, data["inside_tx_packets"],
                  unit="pkts")
        table.add(f"{name}: gateway split segments", None, data["split_segments"])

    on, off = results["clamp on"], results["clamp off"]
    assert on["negotiated_mss"] == 8960
    assert off["negotiated_mss"] == 1460
    assert on["bytes_delivered"] == off["bytes_delivered"] == 3_000_000
    # The clamp cuts the inside network's packet count by ~6x.
    assert on["inside_tx_packets"] < off["inside_tx_packets"] / 3
    # Without it the split engine has nothing to do.
    assert on["split_segments"] > 0 and off["split_segments"] == 0
