"""Table 1 — Server CPU: one 9000 B-MTU connection vs six parallel
1500 B connections per session (axel).

Paper (server-side CPU usage at equal aggregate throughput):

    sessions   1 conn @9000B   6 conns @1500B
    1          20.20 %         19.52 %
    10         22.12 %         34.53 %
    100        34.72 %         100.00 %   (2.88x more CPU)

Here: :class:`ParallelDownloadModel` prices the data plane by cycle
accounting at the shared line rate and session/connection management by
the fitted superlinear overhead (see ``repro.cpu.ServerCosts``).
"""

import pytest

from repro.cpu import XEON_5512U
from repro.workload import ParallelDownloadModel, SessionConfig

PAPER = {
    (1, "jumbo"): 0.2020, (1, "parallel"): 0.1952,
    (10, "jumbo"): 0.2212, (10, "parallel"): 0.3453,
    (100, "jumbo"): 0.3472, (100, "parallel"): 1.0000,
}


def test_table1_parallel_connections(benchmark, report):
    model = ParallelDownloadModel(XEON_5512U, line_rate_bps=10e9)
    jumbo = SessionConfig.single_jumbo()
    parallel = SessionConfig.axel_parallel(connections=6)

    def run():
        return {
            (sessions, name): model.cpu_usage(sessions, config)
            for sessions in (1, 10, 100)
            for name, config in (("jumbo", jumbo), ("parallel", parallel))
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = report("Table 1", "Server CPU: 1 conn @9000 B vs 6 conns @1500 B")
    for sessions in (1, 10, 100):
        for name in ("jumbo", "parallel"):
            table.add(
                f"{sessions} sessions, {name}",
                PAPER[(sessions, name)],
                round(results[(sessions, name)], 4),
                unit="core",
            )
    ratio = results[(100, "parallel")] / results[(100, "jumbo")]
    table.add("CPU ratio at 100 sessions", 2.88, ratio, unit="x")

    # Every cell within 4 points of CPU of the paper's measurement.
    for key, paper_value in PAPER.items():
        assert abs(results[key] - paper_value) < 0.04, key
    # Headline: ~2.88x more CPU for parallel connections; saturation.
    assert 2.4 < ratio < 3.4
    assert results[(100, "parallel")] == 1.0
