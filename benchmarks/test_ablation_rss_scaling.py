"""Ablation — worker scaling under RSS flow sharding.

PXGW shards flows across cores with RSS so the merge path stays
lock-free.  Scaling is near-linear until the hottest core's share of
the flow population diverges from 1/N — Toeplitz placement is uneven at
small flow counts.  This ablation sweeps the worker count at a fixed
800-flow offered load and reports the scaling efficiency.
"""

import random

import pytest

from repro.core import Bound, GatewayConfig, GatewayDatapath
from repro.cpu import XEON_6554S
from repro.workload import interleave, make_tcp_sources

WARMUP = 15_000
MEASURE = 45_000
WORKER_COUNTS = [1, 2, 4, 8, 16]


def run(workers: int, seed: int = 11):
    # Header-only DMA keeps the sweep CPU-bound so core scaling shows.
    config = GatewayConfig(workers=workers, header_only_dma=True)
    datapath = GatewayDatapath(config)
    down = make_tcp_sources(400, 1448, tag=Bound.INBOUND)
    up = make_tcp_sources(400, 8948, tag=Bound.OUTBOUND, base_port=30000,
                          client_net="10.1.0", server_net="198.51.100")
    sources = down * 6 + up
    rng = random.Random(seed)
    datapath.process_stream(interleave(sources, WARMUP, rng, 24.0), final_flush=False)
    datapath.reset_measurement()
    datapath.process_stream(interleave(sources, MEASURE, rng, 24.0), final_flush=False)
    return datapath.sustainable_throughput_bps(XEON_6554S)


def test_ablation_rss_worker_scaling(benchmark, report):
    results = benchmark.pedantic(
        lambda: {workers: run(workers) for workers in WORKER_COUNTS},
        rounds=1, iterations=1,
    )

    table = report("Ablation: RSS scaling", "PXGW throughput vs worker cores (HDO on)")
    base = results[1]
    for workers in WORKER_COUNTS:
        table.add(f"{workers} worker(s)", None, results[workers], unit="bps",
                  note=f"{results[workers] / base:.1f}x of 1 core")

    # Monotonic scaling, and 8 cores reach at least 5x of one core
    # (imperfect due to RSS imbalance, as on real hardware).
    series = [results[w] for w in WORKER_COUNTS]
    assert series == sorted(series)
    assert results[8] > 5 * results[1]
