"""Extension — PXGW under growing flow counts.

§3 argues scalable merging needs "data structures that support fast
lookup of adjacent packets under a large number of flows."  This sweep
grows the concurrent flow population at a fixed offered load and checks
the two properties that claim implies:

* per-packet cycle cost stays ~flat (the flow table and merge contexts
  are O(1) per packet);
* conversion yield erodes only gradually (more flows = fewer packets
  per flow per merge window).
"""

import random

import pytest

from repro.core import Bound, GatewayConfig, GatewayDatapath
from repro.cpu import XEON_6554S
from repro.workload import interleave, make_tcp_sources

FLOW_COUNTS = [100, 400, 1600, 3200]
WARMUP = 15_000
MEASURE = 45_000


def run(flows: int, seed: int = 29):
    datapath = GatewayDatapath(GatewayConfig(hairpin_small_flows=False))
    sources = make_tcp_sources(flows, 1448, tag=Bound.INBOUND)
    rng = random.Random(seed)
    datapath.process_stream(interleave(sources, WARMUP, rng, 24.0),
                            final_flush=False)
    datapath.reset_measurement()
    datapath.process_stream(interleave(sources, MEASURE, rng, 24.0),
                            final_flush=False)
    account = datapath.combined_account()
    return (
        datapath.sustainable_throughput_bps(XEON_6554S),
        datapath.conversion_yield,
        account.cycles / account.packets,
    )


def test_ext_flow_count_scaling(benchmark, report):
    results = benchmark.pedantic(
        lambda: {flows: run(flows) for flows in FLOW_COUNTS},
        rounds=1, iterations=1,
    )

    table = report("Extension: flow-count scaling",
                   "PXGW merge path vs concurrent flow population (downlink)")
    for flows in FLOW_COUNTS:
        tput, cy, cycles = results[flows]
        table.add(f"{flows} flows: throughput", None, tput, unit="bps")
        table.add(f"{flows} flows: yield", None, round(cy, 3))
        table.add(f"{flows} flows: cycles/packet", None, round(cycles, 1))

    base_cycles = results[FLOW_COUNTS[0]][2]
    worst_cycles = max(cycles for _t, _c, cycles in results.values())
    # O(1) lookups: per-packet cost flat within 15 % across a 32x sweep.
    assert worst_cycles < base_cycles * 1.15
    # Yield stays high even at 3200 flows (merge contexts are per-flow).
    assert results[3200][1] > 0.80
    assert results[100][1] >= results[3200][1] - 0.02
